//! GGNN baseline — Groh et al.'s GPU graph construction and search.
//!
//! GGNN builds its graph hierarchically: the dataset is split into
//! blocks small enough for exact in-block kNN, and successive merge /
//! refinement sweeps let every node improve its neighbor list by
//! searching the current partial graph — all steps embarrassingly
//! parallel, which is what made it fast on GPUs. This reproduction
//! keeps that structure (block kNN + graph-guided refinement sweeps +
//! symmetrization) on CPU threads; searches run through the SONG-style
//! kernel in `gpu_sim::kernels` so the GPU cost model prices GGNN the
//! same way it prices CAGRA (Figs. 11 and 13).

use cagra::search::trace::SearchTrace;
use dataset::{PermutableStore, VectorStore};
use distance::{DistanceOracle, Metric};
use gpu_sim::{traced_beam_search, BeamParams};
use graph::relabel::{self, IdMap, RelabelStrategy};
use knn::parallel::{default_threads, parallel_chunks};
use knn::topk::{cmp_neighbor, Neighbor, TopK};
use std::time::{Duration, Instant};

/// GGNN construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct GgnnParams {
    /// Out-degree of the final graph (GGNN's `k_build`).
    pub degree: usize,
    /// Block size for the exact bottom-level kNN (GGNN uses O(1k)).
    pub block: usize,
    /// Graph-guided refinement sweeps (GGNN's merge/refine passes).
    pub refinements: usize,
    /// Beam width used during refinement searches.
    pub refine_beam: usize,
    /// RNG seed for refinement starts.
    pub seed: u64,
}

impl GgnnParams {
    /// Defaults roughly matching the GGNN paper's settings.
    pub fn new(degree: usize) -> Self {
        GgnnParams { degree, block: 512, refinements: 2, refine_beam: degree * 2, seed: 0x66a1 }
    }
}

/// A built GGNN index owning its store.
pub struct Ggnn<S> {
    store: S,
    metric: Metric,
    adjacency: Vec<Vec<u32>>,
    params: GgnnParams,
    id_map: Option<IdMap>,
}

impl<S: VectorStore + PermutableStore> Ggnn<S> {
    /// Renumber vertices for memory locality (same contract as
    /// `CagraIndex::relabel`): adjacency and vector rows move together
    /// and searches keep returning original ids.
    pub fn relabel(&mut self, strategy: RelabelStrategy) {
        let perm = relabel::compute_lists(&self.adjacency, strategy);
        if perm.is_identity() {
            return;
        }
        self.adjacency = relabel::apply_to_lists(&self.adjacency, &perm);
        self.store = self.store.permuted(perm.old_of_new_slice());
        self.id_map = Some(match self.id_map.take() {
            Some(prev) => IdMap { perm: prev.perm.then(&perm), strategy },
            None => IdMap { perm, strategy },
        });
    }
}

impl<S: VectorStore> Ggnn<S> {
    /// Build the GGNN graph.
    pub fn build(store: S, metric: Metric, params: GgnnParams) -> (Self, Duration) {
        assert!(params.degree >= 2, "degree must be at least 2");
        let n = store.len();
        let t0 = Instant::now();
        let threads = default_threads();

        // Stage 1: exact kNN inside each block.
        let block = params.block.max(params.degree + 1);
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let blocks: Vec<(usize, usize)> =
            (0..n).step_by(block).map(|s| (s, (s + block).min(n))).collect();
        {
            let slots = std::sync::Mutex::new(&mut adjacency);
            parallel_chunks(blocks.len(), threads, |bs, be| {
                let oracle = DistanceOracle::new(&store, metric);
                let mut scratch = vec![0.0f32; store.dim()];
                let mut local: Vec<(usize, Vec<u32>)> = Vec::new();
                for &(start, end) in &blocks[bs..be] {
                    for v in start..end {
                        store.get_into(v, &mut scratch);
                        let mut top =
                            TopK::new(params.degree.min((end - start).saturating_sub(1)).max(1));
                        for u in start..end {
                            if u == v {
                                continue;
                            }
                            let d = oracle.to_row(&scratch, u);
                            if d < top.threshold() {
                                top.push(Neighbor::new(u as u32, d));
                            }
                        }
                        local.push((v, top.into_sorted().into_iter().map(|nb| nb.id).collect()));
                    }
                }
                let mut guard = slots.lock().unwrap();
                for (v, list) in local {
                    guard[v] = list;
                }
            });
        }

        // Stage 2: graph-guided refinement sweeps — every node searches
        // the current graph for itself and keeps the best `degree`
        // candidates (GGNN's hierarchical merge collapses to this on a
        // flat layout; the fixpoint behaviour is the same).
        for sweep in 0..params.refinements {
            let snapshot = adjacency.clone();
            let slots = std::sync::Mutex::new(&mut adjacency);
            parallel_chunks(n, threads, |vs, ve| {
                let mut scratch = vec![0.0f32; store.dim()];
                let mut local: Vec<(usize, Vec<u32>)> = Vec::with_capacity(ve - vs);
                for v in vs..ve {
                    store.get_into(v, &mut scratch);
                    let beam = BeamParams {
                        beam: params.refine_beam,
                        n_starts: 4,
                        max_iterations: params.refine_beam * 2,
                        seed: params.seed ^ ((sweep as u64) << 32) ^ v as u64,
                    };
                    let (mut found, _) = traced_beam_search(
                        &snapshot,
                        &store,
                        metric,
                        &scratch,
                        params.degree + 1,
                        &beam,
                    );
                    found.retain(|nb| nb.id as usize != v);
                    // Merge with current list (dedup, keep best).
                    let oracle = DistanceOracle::new(&store, metric);
                    for &u in &snapshot[v] {
                        if !found.iter().any(|nb| nb.id == u) {
                            found.push(Neighbor::new(u, oracle.to_row(&scratch, u as usize)));
                        }
                    }
                    found.sort_unstable_by(cmp_neighbor);
                    found.truncate(params.degree);
                    local.push((v, found.into_iter().map(|nb| nb.id).collect()));
                }
                let mut guard = slots.lock().unwrap();
                for (v, list) in local {
                    guard[v] = list;
                }
            });
        }

        // Stage 3: symmetrization — add reverse edges where a node has
        // spare degree (GGNN's sym-link step).
        let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, list) in adjacency.iter().enumerate() {
            for &u in list {
                incoming[u as usize].push(v as u32);
            }
        }
        for v in 0..n {
            let cap = params.degree + params.degree / 2;
            for &u in &incoming[v] {
                if adjacency[v].len() >= cap {
                    break;
                }
                if !adjacency[v].contains(&u) {
                    adjacency[v].push(u);
                }
            }
        }

        (Ggnn { store, metric, adjacency, params, id_map: None }, t0.elapsed())
    }

    /// Single-query search with the SONG-style kernel; returns results
    /// plus the GPU-costing trace.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        beam: usize,
        seed: u64,
    ) -> (Vec<Neighbor>, SearchTrace) {
        let p =
            BeamParams { beam: beam.max(k), n_starts: 8, max_iterations: beam.max(k) * 4, seed };
        let (mut res, trace) =
            traced_beam_search(&self.adjacency, &self.store, self.metric, query, k, &p);
        if let Some(m) = &self.id_map {
            for nb in &mut res {
                nb.id = m.original_of_internal(nb.id);
            }
        }
        (res, trace)
    }

    /// Batch search (thread-parallel), returning per-query results and
    /// traces for `gpu_sim::simulate_batch`.
    pub fn search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        beam: usize,
    ) -> Vec<(Vec<Neighbor>, SearchTrace)> {
        let dim = queries.dim();
        assert_eq!(dim, self.store.dim(), "query dimension mismatch");
        knn::parallel::parallel_map(queries.len(), default_threads(), |qi| {
            let mut q = vec![0.0f32; dim];
            queries.get_into(qi, &mut q);
            self.search(&q, k, beam, 0x99 ^ qi as u64)
        })
    }

    /// Average out-degree.
    pub fn average_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.adjacency.len() as f64
    }

    /// The owned store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Adjacency lists.
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.adjacency
    }

    /// Build parameters.
    pub fn params(&self) -> &GgnnParams {
        &self.params
    }

    /// The active relabel map, if [`Ggnn::relabel`] reordered the index.
    pub fn id_map(&self) -> Option<&IdMap> {
        self.id_map.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::ground_truth;

    fn setup(n: usize) -> (Ggnn<dataset::Dataset>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 40, family: Family::Gaussian, seed: 13 };
        let (base, queries) = spec.generate();
        let (g, _) = Ggnn::build(base, Metric::SquaredL2, GgnnParams::new(16));
        (g, queries)
    }

    #[test]
    fn builds_bounded_degree_graph() {
        let (g, _) = setup(1200);
        assert_eq!(g.adjacency().len(), 1200);
        for (v, list) in g.adjacency().iter().enumerate() {
            assert!(list.len() <= 16 + 8, "node {v} degree {}", list.len());
            assert!(list.iter().all(|&u| u as usize != v));
            let mut ids = list.clone();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), list.len(), "duplicates at {v}");
        }
    }

    #[test]
    fn refinement_links_across_blocks() {
        // Block kNN alone cannot produce cross-block edges; after
        // refinement most nodes should have at least one.
        let (g, _) = setup(1200);
        let block = g.params().block;
        let cross = g
            .adjacency()
            .iter()
            .enumerate()
            .filter(|(v, list)| list.iter().any(|&u| (u as usize) / block != v / block))
            .count();
        assert!(cross > 600, "only {cross} nodes have cross-block edges");
    }

    #[test]
    fn reaches_reasonable_recall() {
        let (g, queries) = setup(2000);
        let gt = ground_truth(g.store(), Metric::SquaredL2, &queries, 10);
        let got = g.search_batch(&queries, 10, 128);
        let mut hits = 0usize;
        for ((res, _), t) in got.iter().zip(&gt) {
            let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
            hits += res.iter().filter(|nb| ts.contains(&nb.id)).count();
        }
        let recall = hits as f64 / (gt.len() * 10) as f64;
        assert!(recall > 0.85, "GGNN recall@10 = {recall}");
    }

    #[test]
    fn traces_are_gpu_costable() {
        let (g, queries) = setup(600);
        let results = g.search_batch(&queries, 10, 64);
        let traces: Vec<_> = results.into_iter().map(|(_, t)| t).collect();
        let device = gpu_sim::DeviceSpec::a100();
        let timing =
            gpu_sim::simulate_batch(&device, &traces, 8, 4, 32, gpu_sim::Mapping::SingleCta);
        assert!(timing.qps > 0.0);
        assert!(traces.iter().all(|t| !t.hash_in_shared));
    }

    #[test]
    fn relabel_preserves_recall_and_reports_original_ids() {
        let (mut g, queries) = setup(1200);
        let gt = ground_truth(g.store(), Metric::SquaredL2, &queries, 10);
        for strategy in [RelabelStrategy::Degree, RelabelStrategy::Rcm] {
            g.relabel(strategy);
            assert_eq!(g.id_map().unwrap().strategy, strategy);
            let got = g.search_batch(&queries, 10, 128);
            let mut hits = 0usize;
            for ((res, _), t) in got.iter().zip(&gt) {
                let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
                hits += res.iter().filter(|nb| ts.contains(&nb.id)).count();
            }
            let recall = hits as f64 / (gt.len() * 10) as f64;
            // Original-id ground truth only matches if outputs are
            // mapped back; beam starts differ so allow a small dip.
            assert!(recall > 0.8, "{strategy:?} relabeled recall@10 = {recall}");
        }
    }

    #[test]
    #[should_panic(expected = "degree must be at least 2")]
    fn tiny_degree_rejected() {
        let spec = SynthSpec { dim: 4, n: 50, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let _ = Ggnn::build(base, Metric::SquaredL2, GgnnParams::new(1));
    }
}
