//! Plain-text, right-aligned result tables — the data the paper plots.

use std::fmt::Write as _;

/// A simple column-aligned table printed to stdout by every runner.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}  ", cell, width = widths[c]);
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Print to stdout with a title; also writes `<CAGRA_CSV_DIR>/
    /// <slug>.csv` when the `CAGRA_CSV_DIR` environment variable is
    /// set (for plotting the figures outside the terminal).
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("CAGRA_CSV_DIR") {
            let slug: String = title
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }

    /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            let joined: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&joined.join(","));
            out.push('\n');
        };
        line(&self.headers, &mut out);
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }
}

/// Format seconds adaptively (`1.23 s`, `45.6 ms`, `789 us`).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Format a throughput figure with thousands grouping.
pub fn fmt_qps(q: f64) -> String {
    if q >= 1e6 {
        format!("{:.2}M", q / 1e6)
    } else if q >= 1e3 {
        format!("{:.1}k", q / 1e3)
    } else {
        format!("{q:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("longer"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.5 us");
        assert_eq!(fmt_qps(1_500_000.0), "1.50M");
        assert_eq!(fmt_qps(1500.0), "1.5k");
        assert_eq!(fmt_qps(15.0), "15.0");
    }
}
