//! Extension experiment (paper Sec. IV-C2 / Q-C5 discussion): the
//! multi-GPU sharding deployment.
//!
//! The paper recommends sharding once a dataset exceeds device memory
//! but does not evaluate it; this runner closes that gap. It verifies
//! the two properties that make the recommendation sound: recall is
//! preserved under sharding (every shard is searched, so the true
//! neighbors cannot be missed by partitioning), and simulated
//! multi-device throughput scales with the shard count because each
//! device traverses a smaller graph.

use crate::context::{ExpContext, Workload};
use crate::recall::recall_at_k;
use crate::report::{fmt_qps, Table};
use cagra::build::GraphConfig;
use cagra::search::planner::Mode;
use cagra::search::trace::SearchTrace;
use cagra::{SearchParams, ShardedIndex};
use dataset::presets::PresetName;
use dataset::VectorStore;
use gpu_sim::{simulate_sharded_batch, DeviceSpec, Mapping};
use knn::topk::Neighbor;

/// (shards, recall, simulated QPS) rows for one workload.
pub fn measure(wl: &Workload, ctx: &ExpContext, shard_counts: &[usize]) -> Vec<(usize, f64, f64)> {
    let gt = wl.ground_truth(ctx.k);
    let device = DeviceSpec::a100();
    shard_counts
        .iter()
        .map(|&shards| {
            let (index, _) =
                ShardedIndex::build(&wl.base, wl.metric, &GraphConfig::new(wl.degree()), shards);
            let params = SearchParams::for_k(ctx.k);
            let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(wl.queries.len());
            let mut shard_traces: Vec<Vec<SearchTrace>> = vec![Vec::new(); shards];
            for qi in 0..wl.queries.len() {
                let (res, traces) =
                    index.search_traced(wl.queries.row(qi), ctx.k, &params, Mode::SingleCta);
                results.push(res);
                for (s, t) in traces.into_iter().enumerate() {
                    shard_traces[s].push(t);
                }
            }
            // Tile each shard's traces up to the batch target.
            let tiled: Vec<Vec<SearchTrace>> = shard_traces
                .iter()
                .map(|ts| (0..ctx.batch_target).map(|i| ts[i % ts.len()].clone()).collect())
                .collect();
            let timing =
                simulate_sharded_batch(&device, &tiled, wl.base.dim(), 4, 8, Mapping::SingleCta);
            (shards, recall_at_k(&results, &gt, ctx.k), timing.qps)
        })
        .collect()
}

/// Run on the DEEP-like preset (the paper's scaling dataset).
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["shards (GPUs)", "recall@10", "QPS (sim, all devices)"]);
    let wl = Workload::load(PresetName::Deep, ctx);
    for (shards, recall, qps) in measure(&wl, ctx, &[1, 2, 4]) {
        t.row(vec![shards.to_string(), format!("{recall:.4}"), fmt_qps(qps)]);
    }
    t.print("Extension — multi-GPU sharding (Sec. IV-C2)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_preserves_recall() {
        let ctx = ExpContext { n: 1200, queries: 25, batch_target: 1000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let rows = measure(&wl, &ctx, &[1, 3]);
        assert!(rows[0].1 > 0.85, "unsharded recall {}", rows[0].1);
        assert!(
            rows[1].1 > rows[0].1 - 0.05,
            "sharded recall {} collapsed vs {}",
            rows[1].1,
            rows[0].1
        );
        assert!(rows.iter().all(|r| r.2 > 0.0));
    }
}
