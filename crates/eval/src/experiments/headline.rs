//! The abstract's headline ratios, recomputed at this scale:
//!
//! * construction: CAGRA `2.2~27x` faster than HNSW;
//! * large batch at 90–95% recall: `33~77x` vs HNSW/NSSG, `3.8~8.8x`
//!   vs the GPU baselines;
//! * single query at 95% recall: `3.4~53x` vs HNSW.
//!
//! The measured ratios here mix simulated-A100 and 1-core-CPU numbers,
//! so absolute factors are not comparable to the paper's 64-core
//! testbed; the reproducible claim is that every ratio is > 1 with the
//! same ordering (documented in EXPERIMENTS.md).

use crate::context::{ExpContext, Workload};
use crate::experiments::{fig11_construction, fig13_large_batch, fig14_single_query};
use crate::report::Table;
use crate::sweep::qps_at_recall;
use dataset::presets::PresetName;

/// Speedup summary for one dataset.
#[derive(Clone, Debug)]
pub struct Headline {
    /// Construction speedup vs HNSW.
    pub build_vs_hnsw: f64,
    /// Large-batch QPS ratio vs HNSW at the recall floor.
    pub batch_vs_hnsw: f64,
    /// Large-batch QPS ratio vs the best GPU baseline at the floor.
    pub batch_vs_gpu: f64,
    /// Single-query QPS ratio vs HNSW at the floor.
    pub single_vs_hnsw: f64,
    /// The recall floor actually used (highest of {0.95, 0.9, 0.8}
    /// that every method reached).
    pub floor: f64,
}

/// Compute the summary for one workload.
pub fn measure(wl: &Workload, ctx: &ExpContext) -> Headline {
    let builds = fig11_construction::measure(wl);
    let cagra_build = builds.iter().find(|r| r.method == "CAGRA").unwrap().total_s;
    let hnsw_build = builds.iter().find(|r| r.method == "HNSW").unwrap().total_s;

    let batch = fig13_large_batch::measure(wl, ctx);
    let single = fig14_single_query::measure(wl, ctx);

    // Highest common floor so no ratio divides by zero.
    let floor = [0.95, 0.90, 0.80, 0.60]
        .into_iter()
        .find(|&f| {
            batch.iter().all(|m| qps_at_recall(&m.curve, f, m.sim) > 0.0)
                && single.iter().all(|(_, c, sim)| qps_at_recall(c, f, *sim) > 0.0)
        })
        .unwrap_or(0.0);

    let q = |label: &str| {
        let m = batch.iter().find(|m| m.label == label).unwrap();
        qps_at_recall(&m.curve, floor, m.sim)
    };
    let cagra_batch = q("CAGRA (FP32)");
    let gpu_best = q("GGNN").max(q("GANNS"));
    let hnsw_batch = q("HNSW");

    let sq = |label: &str| {
        let (_, c, sim) = single.iter().find(|(l, _, _)| *l == label).unwrap();
        qps_at_recall(c, floor, *sim)
    };

    Headline {
        build_vs_hnsw: hnsw_build / cagra_build.max(1e-12),
        batch_vs_hnsw: cagra_batch / hnsw_batch.max(1e-12),
        batch_vs_gpu: cagra_batch / gpu_best.max(1e-12),
        single_vs_hnsw: sq("CAGRA (FP32)") / sq("HNSW").max(1e-12),
        floor,
    }
}

/// Print the headline table over the four main datasets.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&[
        "dataset",
        "recall floor",
        "build x (vs HNSW)",
        "batch x (vs HNSW)",
        "batch x (vs GPU)",
        "single x (vs HNSW)",
    ]);
    for preset in [PresetName::Sift, PresetName::Gist, PresetName::Glove, PresetName::NyTimes] {
        let wl = Workload::load(preset, ctx);
        let h = measure(&wl, ctx);
        t.row(vec![
            preset.label().to_string(),
            format!("{:.2}", h.floor),
            format!("{:.1}x", h.build_vs_hnsw),
            format!("{:.1}x", h.batch_vs_hnsw),
            format!("{:.1}x", h.batch_vs_gpu),
            format!("{:.1}x", h.single_vs_hnsw),
        ]);
    }
    t.print("Headline speedups (paper: build 2.2~27x, batch 33~77x vs CPU / 3.8~8.8x vs GPU, single 3.4~53x)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cagra_wins_every_headline_ratio() {
        let ctx = ExpContext { n: 1000, queries: 25, batch_target: 5000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let h = measure(&wl, &ctx);
        assert!(h.floor >= 0.6, "no common recall floor reached: {h:?}");
        assert!(h.batch_vs_hnsw > 1.0, "batch vs HNSW: {h:?}");
        assert!(h.single_vs_hnsw > 1.0, "single vs HNSW: {h:?}");
    }
}
