//! Fig. 14: single-query (online) recall↔throughput, CAGRA (multi-CTA,
//! FP32 and FP16) vs HNSW. GGNN/GANNS are omitted, as in the paper —
//! they are batch-oriented.
//!
//! Paper claims to reproduce: CAGRA wins at 95% recall and its lead
//! grows with the recall requirement (more traversal → more distance
//! math → more GPU advantage); FP16 helps most on the big-dimension
//! dataset (GIST).

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, hnsw_curve, CurvePoint};
use cagra::search::planner::Mode;
use cagra::{CagraIndex, HashPolicy};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use hnsw::{Hnsw, HnswParams};

/// Labeled single-query curves for one workload.
pub fn measure(wl: &Workload, ctx: &ExpContext) -> Vec<(&'static str, Vec<CurvePoint>, bool)> {
    let sweep = itopk_sweep(ctx.k, 512);
    let (index, _) = build_cagra(wl);
    let mut out = Vec::new();
    out.push((
        "CAGRA (FP32)",
        cagra_curve(&index, wl, ctx.k, &sweep, Mode::MultiCta, HashPolicy::Standard, 8, 4, 1, true),
        true,
    ));
    let half = index.store().to_f16();
    let index16 = CagraIndex::from_parts(half, index.graph().clone(), wl.metric);
    out.push((
        "CAGRA (FP16)",
        cagra_curve(
            &index16,
            wl,
            ctx.k,
            &sweep,
            Mode::MultiCta,
            HashPolicy::Standard,
            8,
            2,
            1,
            true,
        ),
        true,
    ));
    let clone = Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let h = Hnsw::build(clone, wl.metric, HnswParams::new((wl.degree() / 2).max(4)));
    out.push(("HNSW", hnsw_curve(&h, wl, ctx.k, &sweep, true), false));
    out
}

/// Run on the figure's four datasets.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "method", "width", "recall@10", "QPS", "timing"]);
    for preset in [PresetName::Sift, PresetName::Gist, PresetName::Glove, PresetName::NyTimes] {
        let wl = Workload::load(preset, ctx);
        for (label, curve, sim) in measure(&wl, ctx) {
            for p in curve {
                t.row(vec![
                    preset.label().to_string(),
                    label.to_string(),
                    p.param.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(if sim { p.qps_sim } else { p.qps_cpu }),
                    if sim { "sim-A100".into() } else { "cpu-wall".into() },
                ]);
            }
        }
    }
    t.print("Fig. 14 — single-query (online) search");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::qps_at_recall;

    #[test]
    fn cagra_beats_hnsw_for_single_queries() {
        let ctx = ExpContext { n: 1000, queries: 25, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let curves = measure(&wl, &ctx);
        let floor = 0.8;
        let cagra = qps_at_recall(&curves[0].1, floor, true);
        let hnsw = qps_at_recall(&curves[2].1, floor, false);
        assert!(cagra > 0.0 && hnsw > 0.0, "cagra {cagra} hnsw {hnsw}");
        assert!(cagra > hnsw, "single-query: CAGRA {cagra} must beat HNSW {hnsw}");
    }
}
