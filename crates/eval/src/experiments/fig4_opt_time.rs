//! Fig. 4: graph-optimization time, rank-based vs distance-based
//! reordering.
//!
//! Paper claim to reproduce: rank-based is faster everywhere (up to
//! ~1.9x on the paper's GPU; the gap here is larger because the
//! distance-based variant recomputes distances on a CPU), and
//! distance-based is the variant whose memory/compute footprint stops
//! scaling (the paper hit OOM on DEEP-100M).

use crate::context::{ExpContext, Workload};
use crate::report::{fmt_secs, Table};
use cagra::optimize::{optimize, OptimizeOptions};
use cagra::params::ReorderStrategy;
use dataset::presets::PresetName;
use knn::{NnDescent, NnDescentParams};
use std::time::Instant;

/// Time both strategies on every preset.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "rank-based", "distance-based", "speedup"]);
    for preset in PresetName::ALL {
        let wl = Workload::load(preset, ctx);
        let (rank_s, dist_s) = measure(&wl);
        t.row(vec![
            preset.label().to_string(),
            fmt_secs(rank_s),
            fmt_secs(dist_s),
            format!("{:.2}x", dist_s / rank_s.max(1e-12)),
        ]);
    }
    t.print("Fig. 4 — optimization time, rank vs distance reordering");
}

/// (rank seconds, distance seconds) for one workload.
pub fn measure(wl: &Workload) -> (f64, f64) {
    let d = wl.degree();
    let knn = NnDescent::new(NnDescentParams::new(2 * d)).build(&wl.base, wl.metric);
    let mut opts = OptimizeOptions::new(d);
    let t0 = Instant::now();
    let g_rank = optimize(&knn, &wl.base, wl.metric, &opts);
    let rank_s = t0.elapsed().as_secs_f64();
    opts.strategy = ReorderStrategy::DistanceBased;
    let t1 = Instant::now();
    let g_dist = optimize(&knn, &wl.base, wl.metric, &opts);
    let dist_s = t1.elapsed().as_secs_f64();
    assert_eq!(g_rank.len(), g_dist.len());
    (rank_s, dist_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_based_is_faster() {
        let ctx = ExpContext { n: 1200, queries: 2, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let (rank_s, dist_s) = measure(&wl);
        assert!(rank_s > 0.0 && dist_s > 0.0);
        assert!(
            dist_s > rank_s,
            "distance-based ({dist_s}) must be slower than rank-based ({rank_s})"
        );
    }
}
