//! Fig. 11: graph construction time, CAGRA vs GGNN / GANNS / HNSW /
//! NSSG, with the kNN/optimize breakdown for CAGRA and NSSG.
//!
//! Paper claims to reproduce: CAGRA is compatible with or faster than
//! every other method, and much faster than NSSG, whose pipeline is
//! structurally closest.
//!
//! Substitution note (DESIGN.md): all builders run on this host's CPU
//! threads. The paper runs CAGRA/GGNN/GANNS on an A100 and HNSW/NSSG
//! on 64 cores, so absolute gaps differ; the ordering among methods is
//! the reproducible claim.

use crate::context::{ExpContext, Workload};
use crate::report::{fmt_secs, Table};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use distance::Metric;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use hnsw::{Hnsw, HnswParams};
use nssg::{Nssg, NssgParams};
use std::time::Instant;

/// Per-method construction seconds (kNN stage, optimize stage, total).
#[derive(Clone, Debug)]
pub struct BuildRow {
    /// Method name.
    pub method: &'static str,
    /// Initial-graph stage (0 when the method has none).
    pub knn_s: f64,
    /// Optimization stage (0 when the method has none).
    pub opt_s: f64,
    /// End-to-end seconds.
    pub total_s: f64,
    /// Fine-grained stage timings (CAGRA only).
    pub stages: Option<StageBreakdown>,
}

/// CAGRA's pipeline stages, as reported by `BuildStats`.
#[derive(Clone, Copy, Debug)]
pub struct StageBreakdown {
    /// NN-Descent list initialization (random sampling + first sort).
    pub nn_init_s: f64,
    /// NN-Descent local-join iterations.
    pub nn_iters_s: f64,
    /// Number of NN-Descent iterations run.
    pub nn_iterations: u32,
    /// Detour-count reordering + prune.
    pub reorder_s: f64,
    /// Reverse-edge construction.
    pub reverse_s: f64,
    /// Forward/reverse interleaved merge.
    pub merge_s: f64,
}

/// Time every builder on one workload; degrees matched to the CAGRA
/// degree as closely as each method's parameterization allows.
pub fn measure(wl: &Workload) -> Vec<BuildRow> {
    let d = wl.degree();
    let clone = || Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let mut rows = Vec::new();

    let (_, report) = crate::experiments::build_cagra_graph(wl);
    let s = report.stats;
    rows.push(BuildRow {
        method: "CAGRA",
        knn_s: report.knn_time.as_secs_f64(),
        opt_s: report.opt_time.as_secs_f64(),
        total_s: report.total().as_secs_f64(),
        stages: Some(StageBreakdown {
            nn_init_s: s.nn_init.as_secs_f64(),
            nn_iters_s: s.nn_iters.as_secs_f64(),
            nn_iterations: s.nn_iterations,
            reorder_s: s.reorder.as_secs_f64(),
            reverse_s: s.reverse.as_secs_f64(),
            merge_s: s.merge.as_secs_f64(),
        }),
    });

    // The paper builds CAGRA on the GPU; price the same work on the
    // device model (the host above has one core, the paper's NN-Descent
    // has an A100 — see DESIGN.md).
    let est = gpu_sim::estimate_construction(
        &gpu_sim::DeviceSpec::a100(),
        wl.base.len(),
        wl.base.dim(),
        4,
        d,
        2 * d,
        report.nn_distance_computations,
    );
    rows.push(BuildRow {
        method: "CAGRA (sim-A100)",
        knn_s: est.knn_seconds,
        opt_s: est.opt_seconds,
        total_s: est.total(),
        stages: None,
    });

    let (_, report) = Nssg::build(clone(), Metric::SquaredL2, NssgParams::new(d));
    rows.push(BuildRow {
        method: "NSSG",
        knn_s: report.knn_time.as_secs_f64(),
        opt_s: report.opt_time.as_secs_f64(),
        total_s: (report.knn_time + report.opt_time).as_secs_f64(),
        stages: None,
    });

    let t0 = Instant::now();
    let _ = Hnsw::build(clone(), Metric::SquaredL2, HnswParams::new((d / 2).max(4)));
    rows.push(BuildRow {
        method: "HNSW",
        knn_s: 0.0,
        opt_s: 0.0,
        total_s: t0.elapsed().as_secs_f64(),
        stages: None,
    });

    let (_, dur) = Ggnn::build(clone(), Metric::SquaredL2, GgnnParams::new(d));
    rows.push(BuildRow {
        method: "GGNN",
        knn_s: 0.0,
        opt_s: 0.0,
        total_s: dur.as_secs_f64(),
        stages: None,
    });

    let (_, dur) = Ganns::build(clone(), Metric::SquaredL2, GannsParams::new((d / 2).max(4)));
    rows.push(BuildRow {
        method: "GANNS",
        knn_s: 0.0,
        opt_s: 0.0,
        total_s: dur.as_secs_f64(),
        stages: None,
    });

    rows
}

/// Run on the figure's four datasets.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "method", "kNN stage", "opt stage", "total"]);
    let mut stages =
        Table::new(&["dataset", "nn init", "nn iters", "(count)", "reorder", "reverse", "merge"]);
    for preset in [PresetName::Sift, PresetName::Gist, PresetName::Glove, PresetName::NyTimes] {
        let wl = Workload::load(preset, ctx);
        for row in measure(&wl) {
            t.row(vec![
                preset.label().to_string(),
                row.method.to_string(),
                if row.knn_s > 0.0 { fmt_secs(row.knn_s) } else { "-".into() },
                if row.opt_s > 0.0 { fmt_secs(row.opt_s) } else { "-".into() },
                fmt_secs(row.total_s),
            ]);
            if let Some(s) = row.stages {
                stages.row(vec![
                    preset.label().to_string(),
                    fmt_secs(s.nn_init_s),
                    fmt_secs(s.nn_iters_s),
                    s.nn_iterations.to_string(),
                    fmt_secs(s.reorder_s),
                    fmt_secs(s.reverse_s),
                    fmt_secs(s.merge_s),
                ]);
            }
        }
    }
    t.print("Fig. 11 — construction time");
    stages.print("Fig. 11 — CAGRA stage breakdown");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_build_and_report_time() {
        let ctx = ExpContext { n: 500, queries: 2, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let rows = measure(&wl);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.total_s > 0.0), "{rows:?}");
        let cagra = &rows[0];
        assert!(cagra.knn_s > 0.0 && cagra.opt_s > 0.0);
        assert!((cagra.knn_s + cagra.opt_s - cagra.total_s).abs() < 1e-6);
        let s = cagra.stages.expect("CAGRA row carries the stage breakdown");
        assert!(s.nn_init_s > 0.0 && s.reorder_s > 0.0 && s.merge_s > 0.0, "{s:?}");
        assert!(
            (s.nn_init_s + s.nn_iters_s - cagra.knn_s).abs() < 0.05 * cagra.knn_s + 1e-3,
            "kNN stage {} should be covered by init {} + iters {}",
            cagra.knn_s,
            s.nn_init_s,
            s.nn_iters_s
        );
        assert!(rows[1..].iter().all(|r| r.stages.is_none()));
    }
}
