//! Extension experiment: product-quantized storage with two-phase
//! search (the 10M+-vector configuration of Q-C5).
//!
//! The paper's largest runs hold every f32 vector in device memory;
//! past ~10M vectors that stops fitting. This runner measures the
//! compressed deployment: a sharded index whose shards store `m`-byte
//! PQ codes, traverse under LUT-based asymmetric distances, and
//! rerank the top candidates against full-precision rows memory-mapped
//! from the per-shard spill files. The sweep varies `itopk` and
//! `rerank_depth` to chart the recall the second phase buys back, and
//! the report records resident bytes per vector next to the f32
//! baseline so the memory win is explicit.

use crate::context::{ExpContext, Workload};
use crate::experiments::itopk_sweep;
use crate::recall::recall_at_k;
use crate::report::{fmt_qps, Table};
use cagra::build::GraphConfig;
use cagra::search::planner::Mode;
use cagra::{SearchParams, ShardedIndex};
use dataset::pq::PqConfig;
use dataset::presets::PresetName;
use dataset::VectorStore;
use knn::topk::Neighbor;
use std::time::Instant;

/// Vectors per shard; `ceil(n / SHARD_CAP)` shards keeps the transient
/// f32 build working set bounded regardless of total dataset size.
const SHARD_CAP: usize = 65_536;

/// One sweep point of the (itopk, rerank_depth) grid.
pub struct PqRow {
    /// Internal top-k of the approximate traversal phase.
    pub itopk: usize,
    /// Exact-rerank candidate count (0 = single-phase, PQ only).
    pub rerank_depth: usize,
    /// recall@k against the exact f32 ground truth.
    pub recall: f64,
    /// Wall-clock QPS over the whole sharded index.
    pub qps: f64,
}

/// Everything `run` prints (and tests assert on) for one workload.
pub struct PqReport {
    /// Shard count used (`ceil(n / SHARD_CAP)`).
    pub shards: usize,
    /// Resident bytes per vector of the PQ index (codes + mapped
    /// rerank rows, which count zero when actually mmap'd).
    pub bytes_per_vector: usize,
    /// Resident bytes per vector of the uncompressed baseline.
    pub f32_bytes_per_vector: usize,
    /// The sweep grid.
    pub rows: Vec<PqRow>,
}

/// Finest subspace split that keeps at least 4 dims per subspace —
/// coarser splits (fewer, wider subspaces) lose too much fidelity for
/// the traversal beam to retain the true neighbors, and no rerank
/// depth can recover a candidate the first phase never kept.
pub(crate) fn pq_m(dim: usize) -> usize {
    (1..=dim / 4).rev().find(|&m| dim.is_multiple_of(m)).unwrap_or(1)
}

/// `CAGRA_PQ_M` override for the subspace count (same spirit as
/// `CAGRA_N`): any `1..=dim` value is accepted — `PqConfig` handles
/// non-dividing splits — falling back to [`pq_m`] when unset/invalid.
fn pq_m_for(dim: usize) -> usize {
    std::env::var("CAGRA_PQ_M")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&m| (1..=dim).contains(&m))
        .unwrap_or_else(|| pq_m(dim))
}

/// Build the sharded PQ index for a workload (spilling f32 rows under
/// the system temp dir) and sweep (itopk × rerank_depth).
pub fn measure(wl: &Workload, ctx: &ExpContext) -> PqReport {
    let shards = wl.base.len().div_ceil(SHARD_CAP).max(1);
    let dir = std::env::temp_dir().join(format!(
        "cagra_ext_pq_{}_{}d",
        std::process::id(),
        wl.base.dim()
    ));
    let (index, _) = ShardedIndex::build_pq(
        &wl.base,
        wl.metric,
        &GraphConfig::new(wl.degree()),
        shards,
        &PqConfig::new(pq_m_for(wl.base.dim())),
        &dir,
    )
    .expect("PQ spill dir must be writable");
    let gt = wl.ground_truth(ctx.k);
    let mut rows: Vec<PqRow> = Vec::new();
    // Quantization error reorders neighbors more at density (beam
    // coverage drops as shards multiply), so million-point runs get a
    // wider itopk range to chart where rerank recovers recall.
    let max_itopk = if wl.base.len() >= 100_000 { 512 } else { 128 };
    for itopk in itopk_sweep(ctx.k, max_itopk) {
        for depth in [0, itopk / 2, itopk] {
            // A nonzero depth must cover k; dedup after clamping.
            let depth = if depth == 0 { 0 } else { depth.max(ctx.k) };
            if rows.iter().any(|r| r.itopk == itopk && r.rerank_depth == depth) {
                continue;
            }
            let mut params = SearchParams::for_k(ctx.k);
            params.itopk = itopk;
            params.rerank_depth = depth;
            let t0 = Instant::now();
            let results: Vec<Vec<Neighbor>> = (0..wl.queries.len())
                .map(|qi| index.search(wl.queries.row(qi), ctx.k, &params, Mode::SingleCta))
                .collect();
            let wall = t0.elapsed().as_secs_f64();
            rows.push(PqRow {
                itopk,
                rerank_depth: depth,
                recall: recall_at_k(&results, &gt, ctx.k),
                qps: wl.queries.len() as f64 / wall,
            });
        }
    }
    let report = PqReport {
        shards,
        bytes_per_vector: index.bytes_per_vector(),
        f32_bytes_per_vector: wl.base.bytes_per_vector(),
        rows,
    };
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Run on the DEEP-like preset (the paper's scaling dataset — and the
/// billion-scale family PQ deployments target in practice).
pub fn run(ctx: &ExpContext) {
    let wl = Workload::load(PresetName::Deep, ctx);
    let r = measure(&wl, ctx);
    let mut t = Table::new(&["itopk", "rerank depth", "recall@10", "QPS", "resident B/vec"]);
    for row in &r.rows {
        t.row(vec![
            row.itopk.to_string(),
            if row.rerank_depth == 0 { "off".to_string() } else { row.rerank_depth.to_string() },
            format!("{:.4}", row.recall),
            fmt_qps(row.qps),
            format!("{} (f32: {})", r.bytes_per_vector, r.f32_bytes_per_vector),
        ]);
    }
    t.print(&format!(
        "Extension — PQ two-phase search ({} shards, {}x compression)",
        r.shards,
        r.f32_bytes_per_vector / r.bytes_per_vector.max(1)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cagra::ShardedIndex;

    /// Satellite acceptance: on clustered synth data, two-phase search
    /// holds recall@10 within 1% of the same traversal over an exact
    /// f32 store — the rerank phase recovers what quantization lost.
    #[test]
    fn two_phase_recall_matches_exact_store_within_one_percent() {
        let ctx = ExpContext { n: 1500, queries: 30, batch_target: 1000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Glove, &ctx);
        let gt = wl.ground_truth(ctx.k);
        let mut params = SearchParams::for_k(ctx.k);
        params.itopk = 128;

        let config = GraphConfig::new(wl.degree());
        let (exact, _) = ShardedIndex::build(&wl.base, wl.metric, &config, 2);
        let exact_results: Vec<Vec<Neighbor>> = (0..wl.queries.len())
            .map(|qi| exact.search(wl.queries.row(qi), ctx.k, &params, Mode::SingleCta))
            .collect();
        let exact_recall = recall_at_k(&exact_results, &gt, ctx.k);
        assert!(exact_recall > 0.8, "exact-store baseline recall {exact_recall}");

        let dir = std::env::temp_dir().join(format!("cagra_ext_pq_floor_{}", std::process::id()));
        let (pq, _) = ShardedIndex::build_pq(
            &wl.base,
            wl.metric,
            &config,
            2,
            &PqConfig::new(pq_m(wl.base.dim())),
            &dir,
        )
        .unwrap();
        // Compression is the point: under a quarter of f32 residency.
        assert!(
            pq.bytes_per_vector() * 4 <= wl.base.bytes_per_vector(),
            "PQ resident {} B/vec vs f32 {} B/vec",
            pq.bytes_per_vector(),
            wl.base.bytes_per_vector()
        );
        params.rerank_depth = 128;
        let pq_results: Vec<Vec<Neighbor>> = (0..wl.queries.len())
            .map(|qi| pq.search(wl.queries.row(qi), ctx.k, &params, Mode::SingleCta))
            .collect();
        let pq_recall = recall_at_k(&pq_results, &gt, ctx.k);
        std::fs::remove_dir_all(&dir).ok();
        assert!(
            pq_recall >= exact_recall - 0.01,
            "two-phase recall {pq_recall} fell below exact-store {exact_recall} - 1%"
        );
    }

    #[test]
    fn pq_m_divides_common_dims() {
        for dim in [96, 128, 200, 256, 960, 25, 67] {
            let m = pq_m(dim);
            assert_eq!(dim % m, 0, "m {m} for dim {dim}");
            assert!(m == 1 || dim / m >= 4, "subspace too narrow for dim {dim}");
        }
        assert_eq!(pq_m(96), 24);
        assert_eq!(pq_m(200), 50);
        assert_eq!(pq_m(67), 1);
    }
}
