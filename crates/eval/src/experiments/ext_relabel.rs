//! Extension experiment: memory-locality relabeling ablation
//! (Sec. IV-B1's 128-bit-transaction argument, measured).
//!
//! The same built graph is renumbered by each relabel strategy and
//! searched twice: once on the real batch path for wall-clock QPS and
//! recall, and once with access logging on so `gpu_sim::replay_batch`
//! can count the 128-bit memory transactions the gathers would issue
//! on the modeled device. The hash policy is pinned to `Standard`
//! (id-independent), which makes every relabeled traversal
//! bit-identical to the identity run after id mapping — so the tx
//! column isolates the *layout* effect at exactly equal recall.

use crate::context::{ExpContext, Workload};
use crate::experiments::build_cagra;
use crate::recall::recall_at_k;
use crate::report::{fmt_qps, Table};
use cagra::search::planner::Mode;
use cagra::search::trace::SearchTrace;
use cagra::{CagraIndex, HashPolicy, RelabelStrategy, SearchParams, SearchScratch};
use dataset::presets::PresetName;
use dataset::{Dataset, VectorStore};
use gpu_sim::mem::DEFAULT_CACHE_LINES;
use gpu_sim::{replay_batch, MemLayout, TxCounts};
use knn::topk::Neighbor;
use std::time::Instant;

/// One ablation row: a strategy with its measured costs.
pub struct StrategyRow {
    /// Strategy label (`identity` for the unrelabeled baseline).
    pub label: &'static str,
    /// Simulated 128-bit transactions over the traced batch.
    pub tx: TxCounts,
    /// recall@k (identical across rows by construction).
    pub recall: f64,
    /// Wall-clock batch QPS on the real (untraced) search path.
    pub qps_cpu: f64,
    /// Locality of the relabeled adjacency (mean |u - v|).
    pub mean_edge_span: f64,
}

/// Serial traced pass with access logging enabled, seeded exactly like
/// the batch path so results match it bit for bit.
fn traced_with_accesses(
    index: &CagraIndex<Dataset>,
    wl: &Workload,
    k: usize,
    params: &SearchParams,
) -> (Vec<Vec<Neighbor>>, Vec<SearchTrace>) {
    let mut scratch = SearchScratch::new();
    scratch.set_record_accesses(true);
    let mut results = Vec::with_capacity(wl.queries.len());
    let mut traces = Vec::with_capacity(wl.queries.len());
    for qi in 0..wl.queries.len() {
        let mut p = *params;
        p.seed = params.seed_for_query(qi);
        index.search_mode_with(wl.queries.row(qi), k, &p, Mode::SingleCta, &mut scratch);
        results.push(scratch.results().to_vec());
        traces.push(scratch.trace().clone());
    }
    (results, traces)
}

/// Measure every strategy (identity first) on one workload.
pub fn measure(wl: &Workload, ctx: &ExpContext) -> Vec<StrategyRow> {
    let (base_index, _) = build_cagra(wl);
    let mut params = SearchParams::for_k(ctx.k);
    // Standard hash: id-independent visited set, so relabeled runs are
    // bit-identical to identity (DESIGN.md, "Memory locality").
    params.hash = HashPolicy::Standard;
    let gt = wl.ground_truth(ctx.k);
    let degree = base_index.graph().degree();
    let layout = MemLayout::new(base_index.graph().len(), degree, wl.base.dim() * 4);

    let strategies: [(&'static str, Option<RelabelStrategy>); 4] = [
        ("identity", None),
        ("degree", Some(RelabelStrategy::Degree)),
        ("rcm", Some(RelabelStrategy::Rcm)),
        ("gorder", Some(RelabelStrategy::Gorder)),
    ];
    strategies
        .iter()
        .map(|&(label, strategy)| {
            let store = Dataset::from_flat(base_index.store().as_flat().to_vec(), wl.base.dim());
            let mut index = CagraIndex::from_parts(store, base_index.graph().clone(), wl.metric);
            if let Some(s) = strategy {
                index.relabel(s);
            }
            let t0 = Instant::now();
            let results = index.search_batch_mode(&wl.queries, ctx.k, &params, Mode::SingleCta);
            let wall = t0.elapsed().as_secs_f64();
            let (_, traces) = traced_with_accesses(&index, wl, ctx.k, &params);
            let tx = replay_batch(&layout, &traces, DEFAULT_CACHE_LINES);
            let span = graph::stats::locality_stats(index.graph(), wl.base.dim() * 4);
            StrategyRow {
                label,
                tx,
                recall: recall_at_k(&results, &gt, ctx.k),
                qps_cpu: wl.queries.len() as f64 / wall,
                mean_edge_span: span.mean_edge_span,
            }
        })
        .collect()
}

/// Run on the clustered GloVe-like workload (locality effects need
/// cluster structure to exploit) plus DEEP-like as a control.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&[
        "dataset",
        "strategy",
        "recall@10",
        "QPS (cpu)",
        "tx init",
        "tx expand",
        "tx distance",
        "tx total",
        "vs identity",
        "edge span",
    ]);
    for preset in [PresetName::Glove, PresetName::Deep] {
        let wl = Workload::load(preset, ctx);
        let rows = measure(&wl, ctx);
        let identity_total = rows[0].tx.total().max(1);
        for r in &rows {
            t.row(vec![
                preset.label().to_string(),
                r.label.to_string(),
                format!("{:.4}", r.recall),
                fmt_qps(r.qps_cpu),
                r.tx.init.to_string(),
                r.tx.expand.to_string(),
                r.tx.distance.to_string(),
                r.tx.total().to_string(),
                format!("{:+.1}%", 100.0 * (r.tx.total() as f64 / identity_total as f64 - 1.0)),
                format!("{:.0}", r.mean_edge_span),
            ]);
        }
    }
    t.print("Extension — memory-locality relabeling: simulated 128-bit transactions");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_strategy_beats_identity_on_clustered_data_at_equal_recall() {
        let ctx = ExpContext { n: 1500, queries: 30, batch_target: 2000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Glove, &ctx);
        let rows = measure(&wl, &ctx);
        assert_eq!(rows[0].label, "identity");
        // Standard hash + joint relabeling: recall is *exactly* equal
        // (the traversal is bit-identical after id mapping).
        for r in &rows[1..] {
            assert_eq!(r.recall, rows[0].recall, "{} changed recall", r.label);
        }
        let identity = rows[0].tx.total();
        let best = rows[1..].iter().map(|r| r.tx.total()).min().unwrap();
        assert!(
            best < identity,
            "no relabel strategy reduced simulated transactions: best {best} vs identity {identity}"
        );
    }
}
