//! Extension experiment: recall under churn for the dynamic index
//! (ISSUE 10 / ROADMAP item 2).
//!
//! The paper's CAGRA index is static — the dynamic wrapper bolts
//! insert/delete/compaction onto it, and the question this experiment
//! answers is what that costs in recall at each point of the churn
//! cycle: fresh rows sitting in the brute/NSW delta, deletes masked as
//! tombstones at the merge, and the fully compacted state where
//! everything is back in one CAGRA graph. Recall is measured against a
//! brute-force oracle over the *live* set at that instant, so the
//! number isolates the dynamic machinery from ordinary ANN error.
//!
//! Phases per cycle: `mixed` (after a delete wave + insert wave, churn
//! still in delta/tombstones) and `compacted` (after the epoch swap;
//! the row also reports the off-lock rebuild's wall-clock time).

use crate::context::{ExpContext, Workload};
use crate::report::{fmt_secs, Table};
use cagra::{DynamicIndex, DynamicParams};
use dataset::presets::PresetName;
use dataset::{Dataset, VectorStore};
use knn::brute::ground_truth;
use std::collections::BTreeMap;
use std::time::Instant;

/// One measured point of the churn cycle.
pub struct CycleRow {
    /// Churn cycle index (0 = the initial bulk load).
    pub cycle: usize,
    /// `delta-only`, `mixed`, or `compacted`.
    pub phase: &'static str,
    /// Live rows at the measurement.
    pub live: usize,
    /// Rows in the delta segment.
    pub delta: usize,
    /// Masked (deleted-but-not-compacted) rows.
    pub tombstones: usize,
    /// recall@k against a brute-force oracle over the live set.
    pub recall: f64,
    /// Wall-clock of the compaction that produced this state
    /// (`compacted` rows only; 0 otherwise).
    pub compaction_s: f64,
}

/// recall@k of the index against the live mirror (external id ->
/// base-pool row).
fn live_recall(ix: &DynamicIndex, live: &BTreeMap<u32, usize>, wl: &Workload, k: usize) -> f64 {
    let ids: Vec<u32> = live.keys().copied().collect();
    let mut flat = Vec::with_capacity(live.len() * wl.base.dim());
    for &row in live.values() {
        flat.extend_from_slice(wl.base.row(row));
    }
    let store = Dataset::from_flat(flat, wl.base.dim());
    let truth = ground_truth(&store, wl.metric, &wl.queries, k);
    let results = ix.search_batch(&wl.queries, k);
    let mut hits = 0usize;
    for (gt_rows, got) in truth.iter().zip(&results) {
        for nb in got {
            hits += usize::from(gt_rows.iter().any(|&r| ids[r as usize] == nb.id));
        }
    }
    hits as f64 / (truth.len() * k) as f64
}

/// Run `cycles` churn cycles on one workload; deterministic (explicit
/// compaction, hash-picked delete victims, no background thread).
pub fn measure(wl: &Workload, ctx: &ExpContext, cycles: u32) -> Vec<CycleRow> {
    let mut params = DynamicParams::new(wl.degree());
    params.auto_compact = false;
    // The bar here is recall, not latency: widen the main-graph
    // traversal the same way the acceptance test does.
    params.search.itopk = params.search.itopk.max(128);
    let ix = DynamicIndex::new(wl.base.dim(), wl.metric, params);

    // The base pool is split: ~70% bulk-loads cycle 0, the rest feeds
    // the per-cycle insert waves.
    let bulk = wl.base.len() * 7 / 10;
    let wave = (wl.base.len() - bulk) / cycles.max(1) as usize;
    let mut live: BTreeMap<u32, usize> = BTreeMap::new();
    let mut next_row = 0usize;
    let mut insert_wave = |ix: &DynamicIndex, live: &mut BTreeMap<u32, usize>, n: usize| {
        for _ in 0..n {
            let id = ix.insert(wl.base.row(next_row)).expect("insert");
            live.insert(id, next_row);
            next_row += 1;
        }
    };

    let mut rows = Vec::new();
    let mut record = |ix: &DynamicIndex, live: &BTreeMap<u32, usize>, cycle, phase, secs| {
        let s = ix.stats();
        rows.push(CycleRow {
            cycle,
            phase,
            live: s.live,
            delta: s.delta,
            tombstones: s.tombstones,
            recall: live_recall(ix, live, wl, ctx.k),
            compaction_s: secs,
        });
    };

    insert_wave(&ix, &mut live, bulk);
    record(&ix, &live, 0, "delta-only", 0.0);
    let t0 = Instant::now();
    ix.compact_now();
    record(&ix, &live, 0, "compacted", t0.elapsed().as_secs_f64());

    for cycle in 1..=cycles {
        // Delete a hash-picked ~seventh of the live set, then insert
        // the next slice of the pool on top.
        let victims: Vec<u32> = live
            .keys()
            .copied()
            .filter(|id| id.wrapping_mul(2654435761u32.wrapping_add(cycle)) % 7 == 0)
            .collect();
        for id in &victims {
            assert!(ix.delete(*id), "delete({id}) found nothing");
            live.remove(id);
        }
        insert_wave(&ix, &mut live, wave);
        record(&ix, &live, cycle as usize, "mixed", 0.0);
        let t0 = Instant::now();
        ix.compact_now();
        record(&ix, &live, cycle as usize, "compacted", t0.elapsed().as_secs_f64());
    }
    rows
}

/// Run on SIFT-like (the paper's primary dataset) at the context scale.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&[
        "dataset",
        "cycle",
        "phase",
        "live",
        "delta",
        "tombstones",
        "recall@10",
        "compaction",
    ]);
    let wl = Workload::load(PresetName::Sift, ctx);
    for r in measure(&wl, ctx, 3) {
        t.row(vec![
            wl.preset.name.label().to_string(),
            r.cycle.to_string(),
            r.phase.to_string(),
            r.live.to_string(),
            r.delta.to_string(),
            r.tombstones.to_string(),
            format!("{:.4}", r.recall),
            if r.compaction_s > 0.0 { fmt_secs(r.compaction_s) } else { "-".to_string() },
        ]);
    }
    t.print("Extension — dynamic index: recall under insert/delete churn");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_holds_through_every_churn_phase() {
        let ctx = ExpContext { n: 1200, queries: 25, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Sift, &ctx);
        let rows = measure(&wl, &ctx, 2);
        // delta-only + compacted, then (mixed + compacted) per cycle.
        assert_eq!(rows.len(), 2 + 2 * 2);
        for r in &rows {
            assert!(
                r.recall >= 0.85,
                "cycle {} {} recall@{} = {:.3}",
                r.cycle,
                r.phase,
                ctx.k,
                r.recall
            );
        }
        let last = rows.last().unwrap();
        assert_eq!(last.phase, "compacted");
        assert_eq!(last.tombstones, 0, "compaction must clear tombstones");
        assert_eq!(last.delta, 0, "compaction must fold the delta");
    }
}
