//! Fig. 15: construction time vs dataset size (the paper's DEEP-1M /
//! 10M / 100M), CAGRA vs HNSW.
//!
//! Paper claims to reproduce: both methods scale roughly linearly in
//! `N`, with CAGRA consistently faster. The paper's 1x/10x/100x ladder
//! is compressed to 1x/4x/16x here (a 100x rung does not fit one core;
//! the per-decade growth rate is still measurable from two ratios).

use crate::context::{ExpContext, Workload};
use crate::report::{fmt_secs, Table};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use hnsw::{Hnsw, HnswParams};
use std::time::Instant;

/// Size ladder used at this scale.
pub fn sizes(ctx: &ExpContext) -> [usize; 3] {
    [ctx.n, ctx.n * 4, ctx.n * 16]
}

/// (n, cagra seconds, hnsw seconds) triples.
pub fn measure(ctx: &ExpContext) -> Vec<(usize, f64, f64)> {
    sizes(ctx)
        .into_iter()
        .map(|n| {
            let wl = Workload::load_sized(PresetName::Deep, n, 1, ctx.seed);
            let (_, report) = crate::experiments::build_cagra_graph(&wl);
            let clone = Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
            let t0 = Instant::now();
            let _ = Hnsw::build(clone, wl.metric, HnswParams::new((wl.degree() / 2).max(4)));
            let hnsw_s = t0.elapsed().as_secs_f64();
            (n, report.total().as_secs_f64(), hnsw_s)
        })
        .collect()
}

/// Print the scaling table.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["N", "CAGRA", "HNSW", "HNSW/CAGRA"]);
    for (n, cagra_s, hnsw_s) in measure(ctx) {
        t.row(vec![
            n.to_string(),
            fmt_secs(cagra_s),
            fmt_secs(hnsw_s),
            format!("{:.2}x", hnsw_s / cagra_s.max(1e-12)),
        ]);
    }
    t.print("Fig. 15 — construction scaling (DEEP-like)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_scales_with_n() {
        let ctx = ExpContext { n: 300, queries: 1, ..ExpContext::default() };
        let rows = measure(&ctx);
        assert_eq!(rows.len(), 3);
        // 16x data must take clearly more time than 1x for both.
        assert!(rows[2].1 > rows[0].1, "CAGRA: {rows:?}");
        assert!(rows[2].2 > rows[0].2, "HNSW: {rows:?}");
    }
}
