//! Extension experiment: isolate the *search* contribution (Sec. IV)
//! from the *graph* contribution (Sec. III).
//!
//! The paper's comparisons vary both graph and search at once. Here
//! the graph is held fixed — the CAGRA graph — and three search
//! implementations traverse it: CAGRA's buffered top-M search
//! (single-CTA, forgettable hash), SONG's bounded-priority-queue
//! search (the prior GPU state of the art CAGRA's kernel design
//! improves on), and NSSG's CPU beam search. The simulated GPU QPS
//! gap between CAGRA and SONG on the identical graph is the kernel
//! contribution in isolation.

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::recall::recall_at_k;
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, sim_batch_qps, CurvePoint};
use cagra::search::planner::Mode;
use cagra::search::trace::SearchTrace;
use cagra::HashPolicy;
use dataset::presets::PresetName;
use dataset::VectorStore;
use gpu_sim::Mapping;
use knn::topk::Neighbor;
use song::{song_search, SongParams, StartPolicy};
use std::time::Instant;

/// Curves for the three search implementations on one shared graph.
pub fn measure(wl: &Workload, ctx: &ExpContext) -> Vec<(&'static str, Vec<CurvePoint>)> {
    let (index, _) = build_cagra(wl);
    let adjacency: Vec<Vec<u32>> =
        (0..index.graph().len()).map(|v| index.graph().neighbors(v).to_vec()).collect();
    let sweep = itopk_sweep(ctx.k, 256);
    let gt = wl.ground_truth(ctx.k);
    let mut out = Vec::new();

    out.push((
        "CAGRA search",
        cagra_curve(
            &index,
            wl,
            ctx.k,
            &sweep,
            Mode::SingleCta,
            HashPolicy::Forgettable { bits: 11, reset_interval: 1 },
            8,
            4,
            ctx.batch_target,
            false,
        ),
    ));

    // SONG over the identical graph; pq_size plays the itopk role.
    let song_curve: Vec<CurvePoint> = sweep
        .iter()
        .map(|&pq| {
            let params = SongParams {
                starts: StartPolicy::Random(index.graph().degree()),
                ..SongParams::new(pq)
            };
            let t0 = Instant::now();
            let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(wl.queries.len());
            let mut traces: Vec<SearchTrace> = Vec::with_capacity(wl.queries.len());
            for qi in 0..wl.queries.len() {
                let (res, trace) = song_search(
                    &adjacency,
                    &wl.base,
                    wl.metric,
                    wl.queries.row(qi),
                    ctx.k,
                    &params,
                );
                results.push(res);
                traces.push(trace);
            }
            let wall = t0.elapsed().as_secs_f64();
            CurvePoint {
                param: pq,
                recall: recall_at_k(&results, &gt, ctx.k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim: sim_batch_qps(
                    &traces,
                    wl.base.dim(),
                    4,
                    32,
                    Mapping::SingleCta,
                    ctx.batch_target,
                ),
                scratch_reused: false,
            }
        })
        .collect();
    out.push(("SONG search", song_curve));

    // NSSG beam (CPU) over the same graph.
    let nssg_curve: Vec<CurvePoint> = sweep
        .iter()
        .map(|&l| {
            let t0 = Instant::now();
            let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(wl.queries.len());
            for qi in 0..wl.queries.len() {
                let (res, _) = nssg::beam_search(
                    &adjacency,
                    &wl.base,
                    wl.metric,
                    wl.queries.row(qi),
                    ctx.k,
                    l,
                    l,
                    0x7e57 ^ qi as u64,
                );
                results.push(res);
            }
            let wall = t0.elapsed().as_secs_f64();
            CurvePoint {
                param: l,
                recall: recall_at_k(&results, &gt, ctx.k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim: 0.0,
                scratch_reused: false,
            }
        })
        .collect();
    out.push(("NSSG beam (CPU)", nssg_curve));

    out
}

/// Run on DEEP-like and GloVe-like workloads.
pub fn run(ctx: &ExpContext) {
    let mut t =
        Table::new(&["dataset", "search impl", "width", "recall@10", "QPS", "timing", "scratch"]);
    for preset in [PresetName::Deep, PresetName::Glove] {
        let wl = Workload::load(preset, ctx);
        for (label, curve) in measure(&wl, ctx) {
            let sim = label != "NSSG beam (CPU)";
            for p in curve {
                t.row(vec![
                    preset.label().to_string(),
                    label.to_string(),
                    p.param.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(if sim { p.qps_sim } else { p.qps_cpu }),
                    if sim { "sim-A100".into() } else { "cpu-wall".into() },
                    if p.scratch_reused { "reused".into() } else { "fresh".into() },
                ]);
            }
        }
    }
    t.print("Extension — search-implementation ablation on a fixed CAGRA graph");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::qps_at_recall;

    #[test]
    fn cagra_search_beats_song_on_the_same_graph() {
        let ctx = ExpContext { n: 1200, queries: 25, batch_target: 4000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let curves = measure(&wl, &ctx);
        let floor = 0.8;
        let cagra = qps_at_recall(&curves[0].1, floor, true);
        let song = qps_at_recall(&curves[1].1, floor, true);
        assert!(cagra > 0.0 && song > 0.0, "cagra {cagra} song {song}");
        assert!(
            cagra > song,
            "on the same graph, CAGRA's kernel ({cagra}) must out-simulate SONG's ({song})"
        );
    }
}
