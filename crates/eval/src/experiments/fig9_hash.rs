//! Fig. 9: forgettable vs standard hash table management.
//!
//! Paper claims to reproduce: the forgettable (small, periodically
//! reset, shared-memory) table reaches compatible-or-better throughput
//! than the standard device-memory table without catastrophic recall
//! loss; the gain is smaller on larger-dimension data (GloVe) where
//! distance math dominates hash overhead.

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, CurvePoint};
use cagra::search::planner::Mode;
use cagra::HashPolicy;
use dataset::presets::PresetName;

/// Compare both policies on DEEP-like and GloVe-like data.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "hash", "itopk", "recall@10", "QPS (sim)"]);
    for preset in [PresetName::Deep, PresetName::Glove] {
        let wl = Workload::load(preset, ctx);
        for (label, curve) in curves(&wl, ctx) {
            for p in curve {
                t.row(vec![
                    preset.label().to_string(),
                    label.to_string(),
                    p.param.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(p.qps_sim),
                ]);
            }
        }
    }
    t.print("Fig. 9 — forgettable vs standard hash (single-CTA, reset every iteration)");
}

/// The two curves for one workload (reset interval 1, as in the
/// paper's experiment).
pub fn curves(wl: &Workload, ctx: &ExpContext) -> Vec<(&'static str, Vec<CurvePoint>)> {
    let (index, _) = build_cagra(wl);
    let sweep = itopk_sweep(ctx.k, 64);
    [
        ("standard", HashPolicy::Standard),
        ("forgettable", HashPolicy::Forgettable { bits: 10, reset_interval: 1 }),
    ]
    .into_iter()
    .map(|(label, hash)| {
        let c = cagra_curve(
            &index,
            wl,
            ctx.k,
            &sweep,
            Mode::SingleCta,
            hash,
            8,
            4,
            ctx.batch_target,
            false,
        );
        (label, c)
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::qps_at_recall;

    #[test]
    fn forgettable_is_competitive_without_recall_collapse() {
        // NOTE on scale: at n = 2500 the search visits a large fraction
        // of the dataset, so every post-reset candidate is a re-visit
        // and the forgettable table recomputes far more distances than
        // it would at the paper's 1M+ scale (where it matches or beats
        // the standard table -- reproduced at CAGRA_N=8000, see
        // EXPERIMENTS.md). The test therefore checks the two paper
        // claims that survive downscaling: no recall collapse, and
        // competitiveness at the narrow-search end where re-visits are
        // rare.
        let ctx = ExpContext { n: 2500, queries: 30, batch_target: 2000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let cs = curves(&wl, &ctx);
        let std_best = cs[0].1.iter().map(|p| p.recall).fold(0.0, f64::max);
        let fgt_best = cs[1].1.iter().map(|p| p.recall).fold(0.0, f64::max);
        assert!(fgt_best > std_best - 0.1, "forgettable recall {fgt_best} vs standard {std_best}");
        // Narrow-search point: throughput within 10%.
        let q_std_first = cs[0].1[0].qps_sim;
        let q_fgt_first = cs[1].1[0].qps_sim;
        assert!(
            q_fgt_first >= 0.9 * q_std_first,
            "narrow search: forgettable {q_fgt_first} vs standard {q_std_first}"
        );
        // Whole curve: no worse than the small-scale revisit artifact
        // explains.
        let floor = (std_best.min(fgt_best) - 0.05).max(0.5);
        let q_std = qps_at_recall(&cs[0].1, floor, true);
        let q_fgt = qps_at_recall(&cs[1].1, floor, true);
        assert!(q_fgt >= 0.6 * q_std, "forgettable {q_fgt} vs standard {q_std} at floor {floor}");
    }
}
