//! Table I: the datasets and the degrees CAGRA uses for them, plus
//! the scale this reproduction actually runs at.

use crate::context::{ExpContext, Workload};
use crate::report::Table;
use dataset::presets::PresetName;

/// Print Table I with the paper and scaled sizes side by side.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "dim", "paper N", "scaled N", "degree d", "family"]);
    for name in PresetName::ALL {
        let wl = Workload::load(name, ctx);
        t.row(vec![
            name.label().to_string(),
            wl.preset.dim.to_string(),
            wl.preset.paper_n.to_string(),
            ctx.n.to_string(),
            wl.degree().to_string(),
            format!("{:?}", wl.preset.family),
        ]);
    }
    t.print("Table I — datasets (paper vs this reproduction)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let ctx = ExpContext { n: 120, queries: 2, ..ExpContext::default() };
        run(&ctx); // must not panic
    }
}
