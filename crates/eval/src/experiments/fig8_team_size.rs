//! Fig. 8: the effect of warp-splitting team size on throughput.
//!
//! Paper claims to reproduce: on a small-dimension dataset (DEEP, 96)
//! team sizes 4–8 are fastest (team 2 pays register pressure, team 32
//! wastes load lanes); on a large-dimension dataset (GIST, 960) the
//! full warp (32) wins. Recall is identical across team sizes — the
//! split changes only the hardware mapping.

use crate::context::{ExpContext, Workload};
use crate::experiments::build_cagra;
use crate::recall::recall_at_k;
use crate::report::{fmt_qps, Table};
use crate::sweep::sim_batch_qps;
use cagra::search::planner::Mode;
use cagra::SearchParams;
use dataset::presets::PresetName;
use dataset::VectorStore;
use gpu_sim::Mapping;

/// Team sizes the paper sweeps.
pub const TEAMS: [usize; 5] = [2, 4, 8, 16, 32];

/// Run the sweep on DEEP-like and GIST-like workloads.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "team", "recall@10", "QPS (sim)"]);
    for preset in [PresetName::Deep, PresetName::Gist] {
        let wl = Workload::load(preset, ctx);
        for (team, recall, qps) in sweep(&wl, ctx) {
            t.row(vec![
                preset.label().to_string(),
                team.to_string(),
                format!("{:.4}", recall),
                fmt_qps(qps),
            ]);
        }
    }
    t.print("Fig. 8 — team size vs throughput (batch search)");
}

/// (team, recall, simulated QPS) triples for one workload. The search
/// runs once — team size is purely a costing input.
pub fn sweep(wl: &Workload, ctx: &ExpContext) -> Vec<(usize, f64, f64)> {
    let (index, _) = build_cagra(wl);
    let params = SearchParams::for_k(ctx.k);
    let out = index.search_batch_traced(&wl.queries, ctx.k, &params, Mode::SingleCta);
    let results: Vec<_> = out.iter().map(|(r, _)| r.clone()).collect();
    let traces: Vec<_> = out.into_iter().map(|(_, t)| t).collect();
    let recall = recall_at_k(&results, &wl.ground_truth(ctx.k), ctx.k);
    TEAMS
        .iter()
        .map(|&team| {
            let qps = sim_batch_qps(
                &traces,
                wl.base.dim(),
                4,
                team,
                Mapping::SingleCta,
                ctx.batch_target,
            );
            (team, recall, qps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qps_map(wl: &Workload, ctx: &ExpContext) -> std::collections::HashMap<usize, f64> {
        sweep(wl, ctx).into_iter().map(|(t, _, q)| (t, q)).collect()
    }

    #[test]
    fn small_dim_prefers_mid_teams_large_dim_prefers_full_warp() {
        let ctx = ExpContext { n: 700, queries: 20, batch_target: 2000, ..ExpContext::default() };
        let deep = qps_map(&Workload::load(PresetName::Deep, &ctx), &ctx);
        assert!(deep[&8] > deep[&2], "deep: team8 {} vs team2 {}", deep[&8], deep[&2]);
        assert!(deep[&8] >= deep[&32], "deep: team8 {} vs team32 {}", deep[&8], deep[&32]);
        let gist = qps_map(&Workload::load(PresetName::Gist, &ctx), &ctx);
        assert!(gist[&32] > gist[&4], "gist: team32 {} vs team4 {}", gist[&32], gist[&4]);
    }

    #[test]
    fn recall_is_team_size_invariant() {
        let ctx = ExpContext { n: 500, queries: 10, batch_target: 500, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let rows = sweep(&wl, &ctx);
        let first = rows[0].1;
        assert!(rows.iter().all(|&(_, r, _)| (r - first).abs() < 1e-12));
    }
}
