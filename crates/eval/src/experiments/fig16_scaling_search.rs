//! Fig. 16: search performance vs dataset size (DEEP ladder), CAGRA vs
//! HNSW, at recall@10 and recall@100.
//!
//! Paper claims to reproduce: recall declines only slightly as the
//! dataset grows, with CAGRA's decline tracking HNSW's; throughput
//! degradation is not significant.

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, hnsw_curve, CurvePoint};
use cagra::search::planner::Mode;
use cagra::HashPolicy;
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use hnsw::{Hnsw, HnswParams};

/// Curves for one (size, k) cell.
pub fn measure(n: usize, k: usize, ctx: &ExpContext) -> Vec<(&'static str, Vec<CurvePoint>, bool)> {
    let wl = Workload::load_sized(PresetName::Deep, n, ctx.queries, ctx.seed);
    let sweep = itopk_sweep(k, (k * 16).min(512).max(k.max(16)));
    let (index, _) = build_cagra(&wl);
    let cagra = cagra_curve(
        &index,
        &wl,
        k,
        &sweep,
        Mode::SingleCta,
        HashPolicy::Forgettable { bits: 11, reset_interval: 1 },
        8,
        4,
        ctx.batch_target,
        false,
    );
    let clone = Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let h = Hnsw::build(clone, wl.metric, HnswParams::new((wl.degree() / 2).max(4)));
    let hnsw = hnsw_curve(&h, &wl, k, &sweep, false);
    vec![("CAGRA", cagra, true), ("HNSW", hnsw, false)]
}

/// Print the table for both recall@10 and recall@100.
pub fn run(ctx: &ExpContext) {
    let sizes = super::fig15_scaling_build::sizes(ctx);
    for k in [10usize, 100] {
        let mut t = Table::new(&["N", "method", "width", &format!("recall@{k}"), "QPS", "timing"]);
        for n in sizes {
            if n <= k * 2 {
                continue; // dataset too small for this recall target
            }
            for (label, curve, sim) in measure(n, k, ctx) {
                for p in curve {
                    t.row(vec![
                        n.to_string(),
                        label.to_string(),
                        p.param.to_string(),
                        format!("{:.4}", p.recall),
                        fmt_qps(if sim { p.qps_sim } else { p.qps_cpu }),
                        if sim { "sim-A100".into() } else { "cpu-wall".into() },
                    ]);
                }
            }
        }
        t.print(&format!("Fig. 16 — search scaling, recall@{k}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_degrades_gracefully_with_size() {
        let ctx = ExpContext { n: 400, queries: 20, batch_target: 1000, ..ExpContext::default() };
        let small = measure(400, 10, &ctx);
        let large = measure(1600, 10, &ctx);
        let best = |curves: &[(&str, Vec<CurvePoint>, bool)], i: usize| {
            curves[i].1.iter().map(|p| p.recall).fold(0.0, f64::max)
        };
        let cagra_small = best(&small, 0);
        let cagra_large = best(&large, 0);
        assert!(cagra_small > 0.85, "small-N recall {cagra_small}");
        assert!(
            cagra_large > cagra_small - 0.15,
            "recall must not collapse with N: {cagra_large} vs {cagra_small}"
        );
    }

    #[test]
    fn supports_recall_at_100() {
        let ctx = ExpContext { n: 600, queries: 10, batch_target: 500, ..ExpContext::default() };
        let curves = measure(600, 100, &ctx);
        let best = curves[0].1.iter().map(|p| p.recall).fold(0.0, f64::max);
        assert!(best > 0.7, "recall@100 = {best}");
    }
}
