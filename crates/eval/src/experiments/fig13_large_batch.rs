//! Fig. 13: large-batch recall↔throughput, all methods (batch 10k in
//! the paper; tiled to `ctx.batch_target` here), including CAGRA FP16.
//!
//! Paper claims to reproduce: CAGRA beats both CPU methods (by large
//! factors) and the GPU baselines (by smaller factors) across the
//! 90–95% recall range; FP16 adds throughput on top without hurting
//! recall.

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, hnsw_curve, nssg_curve, traced_curve, CurvePoint};
use cagra::search::planner::Mode;
use cagra::{CagraIndex, HashPolicy, SearchParams};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use ganns::{Ganns, GannsParams};
use ggnn::{Ggnn, GgnnParams};
use hnsw::{Hnsw, HnswParams};
use nssg::{Nssg, NssgParams};

/// A labeled curve plus whether its QPS column is simulated GPU time.
pub struct MethodCurve {
    /// Display label.
    pub label: &'static str,
    /// Sweep points.
    pub curve: Vec<CurvePoint>,
    /// True when `qps_sim` is the relevant column.
    pub sim: bool,
}

/// Produce every method's curve for one workload.
pub fn measure(wl: &Workload, ctx: &ExpContext) -> Vec<MethodCurve> {
    let d = wl.degree();
    let clone = || Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let sweep = itopk_sweep(ctx.k, 256);
    let hash = HashPolicy::Forgettable { bits: 11, reset_interval: 1 };
    let mut out = Vec::new();

    let (index, _) = build_cagra(wl);
    out.push(MethodCurve {
        label: "CAGRA (FP32)",
        curve: cagra_curve(
            &index,
            wl,
            ctx.k,
            &sweep,
            Mode::SingleCta,
            hash,
            8,
            4,
            ctx.batch_target,
            false,
        ),
        sim: true,
    });

    // FP16: same graph, half-precision store (recall is re-measured on
    // the narrowed vectors — the paper found no degradation).
    let half = index.store().to_f16();
    let index16 = CagraIndex::from_parts(half, index.graph().clone(), wl.metric);
    out.push(MethodCurve {
        label: "CAGRA (FP16)",
        curve: cagra_curve(
            &index16,
            wl,
            ctx.k,
            &sweep,
            Mode::SingleCta,
            hash,
            8,
            2,
            ctx.batch_target,
            false,
        ),
        sim: true,
    });

    // INT8: our extension of the paper's low-precision proposal —
    // quarter the FP32 traffic at a small additional recall cost.
    let quant = index.store().to_i8();
    let index8 = CagraIndex::from_parts(quant, index.graph().clone(), wl.metric);
    out.push(MethodCurve {
        label: "CAGRA (INT8)",
        curve: cagra_curve(
            &index8,
            wl,
            ctx.k,
            &sweep,
            Mode::SingleCta,
            hash,
            8,
            1,
            ctx.batch_target,
            false,
        ),
        sim: true,
    });

    let (g, _) = Ggnn::build(clone(), wl.metric, GgnnParams::new(d));
    out.push(MethodCurve {
        label: "GGNN",
        curve: traced_curve(wl, ctx.k, &sweep, ctx.batch_target, |beam| {
            g.search_batch(&wl.queries, ctx.k, beam)
        }),
        sim: true,
    });

    let (g, _) = Ganns::build(clone(), wl.metric, GannsParams::new((d / 2).max(4)));
    out.push(MethodCurve {
        label: "GANNS",
        curve: traced_curve(wl, ctx.k, &sweep, ctx.batch_target, |beam| {
            g.search_batch(&wl.queries, ctx.k, beam)
        }),
        sim: true,
    });

    let h = Hnsw::build(clone(), wl.metric, HnswParams::new((d / 2).max(4)));
    out.push(MethodCurve {
        label: "HNSW",
        curve: hnsw_curve(&h, wl, ctx.k, &sweep, false),
        sim: false,
    });

    let (g, _) = Nssg::build(clone(), wl.metric, NssgParams::new(d));
    out.push(MethodCurve { label: "NSSG", curve: nssg_curve(&g, wl, ctx.k, &sweep), sim: false });

    out
}

/// Run on the figure's four datasets.
pub fn run(ctx: &ExpContext) {
    let mut t =
        Table::new(&["dataset", "method", "width", "recall@10", "QPS", "timing", "scratch"]);
    for preset in [PresetName::Sift, PresetName::Gist, PresetName::Glove, PresetName::NyTimes] {
        let wl = Workload::load(preset, ctx);
        for m in measure(&wl, ctx) {
            for p in &m.curve {
                t.row(vec![
                    preset.label().to_string(),
                    m.label.to_string(),
                    p.param.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(if m.sim { p.qps_sim } else { p.qps_cpu }),
                    if m.sim { "sim-A100".into() } else { "cpu-wall".into() },
                    if p.scratch_reused { "reused".into() } else { "fresh".into() },
                ]);
            }
        }
    }
    t.print(&format!("Fig. 13 — large-batch search (batch target {})", ctx.batch_target));
}

/// CAGRA's FP16-vs-FP32 recall delta for one workload (support for the
/// "no degradation" claim); returns (fp32 recall, fp16 recall).
pub fn fp16_recall_delta(wl: &Workload, ctx: &ExpContext) -> (f64, f64) {
    let (index, _) = build_cagra(wl);
    let params = SearchParams::for_k(ctx.k);
    let gt = wl.ground_truth(ctx.k);
    let r32 = {
        let out = index.search_batch(&wl.queries, ctx.k, &params);
        crate::recall::recall_at_k(&out, &gt, ctx.k)
    };
    let half = index.store().to_f16();
    let index16 = CagraIndex::from_parts(half, index.graph().clone(), wl.metric);
    let r16 = {
        let out = index16.search_batch(&wl.queries, ctx.k, &params);
        crate::recall::recall_at_k(&out, &gt, ctx.k)
    };
    (r32, r16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::qps_at_recall;

    #[test]
    fn cagra_beats_cpu_baselines_at_matched_recall() {
        let ctx = ExpContext { n: 1000, queries: 30, batch_target: 5000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let curves = measure(&wl, &ctx);
        let floor = 0.8;
        let cagra = qps_at_recall(
            &curves.iter().find(|m| m.label == "CAGRA (FP32)").unwrap().curve,
            floor,
            true,
        );
        let hnsw =
            qps_at_recall(&curves.iter().find(|m| m.label == "HNSW").unwrap().curve, floor, false);
        assert!(cagra > 0.0, "CAGRA never reached recall {floor}");
        assert!(hnsw > 0.0, "HNSW never reached recall {floor}");
        assert!(cagra > hnsw, "CAGRA {cagra} must beat HNSW {hnsw} in large batches");
    }

    #[test]
    fn fp16_does_not_degrade_recall() {
        let ctx = ExpContext { n: 800, queries: 30, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let (r32, r16) = fp16_recall_delta(&wl, &ctx);
        assert!(r16 > r32 - 0.02, "fp16 recall {r16} vs fp32 {r32}");
    }
}
