//! Fig. 5: search performance of graphs optimized with rank-based vs
//! distance-based reordering.
//!
//! Paper claim to reproduce: the recall↔throughput balance is nearly
//! identical — the cheap rank approximation costs no search quality.

use crate::context::{ExpContext, Workload};
use crate::experiments::itopk_sweep;
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, CurvePoint};
use cagra::build::GraphConfig;
use cagra::params::ReorderStrategy;
use cagra::search::planner::Mode;
use cagra::{CagraIndex, HashPolicy};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;

/// Compare the two strategies' recall↔QPS curves.
pub fn run(ctx: &ExpContext) {
    let mut t = Table::new(&["dataset", "strategy", "itopk", "recall@10", "QPS (sim)"]);
    for preset in [PresetName::Sift, PresetName::Glove] {
        let wl = Workload::load(preset, ctx);
        for (label, strategy) in
            [("rank", ReorderStrategy::RankBased), ("distance", ReorderStrategy::DistanceBased)]
        {
            for p in curve(&wl, strategy, ctx) {
                t.row(vec![
                    preset.label().to_string(),
                    label.to_string(),
                    p.param.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(p.qps_sim),
                ]);
            }
        }
    }
    t.print("Fig. 5 — search quality: rank- vs distance-based graphs");
}

/// The recall↔QPS curve of a graph built with `strategy`.
pub fn curve(wl: &Workload, strategy: ReorderStrategy, ctx: &ExpContext) -> Vec<CurvePoint> {
    let base = Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let config = GraphConfig { strategy, ..GraphConfig::new(wl.degree()) };
    let (index, _) = CagraIndex::build(base, wl.metric, &config);
    cagra_curve(
        &index,
        wl,
        ctx.k,
        &itopk_sweep(ctx.k, 256),
        Mode::SingleCta,
        HashPolicy::Forgettable { bits: 11, reset_interval: 1 },
        8,
        4,
        ctx.batch_target,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_reach_similar_recall() {
        let ctx = ExpContext { n: 800, queries: 30, batch_target: 500, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let rank = curve(&wl, ReorderStrategy::RankBased, &ctx);
        let dist = curve(&wl, ReorderStrategy::DistanceBased, &ctx);
        let best_rank = rank.iter().map(|p| p.recall).fold(0.0, f64::max);
        let best_dist = dist.iter().map(|p| p.recall).fold(0.0, f64::max);
        assert!(
            (best_rank - best_dist).abs() < 0.1,
            "rank {best_rank} vs distance {best_dist} recall should be compatible"
        );
        assert!(best_rank > 0.8, "rank-based best recall {best_rank}");
    }
}
