//! Fig. 12: intrinsic graph quality — the CAGRA graph vs the NSSG
//! graph, both searched with NSSG's (single-threaded) search
//! implementation.
//!
//! Paper claim to reproduce: the two graphs trade wins by dataset but
//! are roughly equivalent. As in the paper, the CAGRA degree is set to
//! the largest multiple of 16 at or below NSSG's average out-degree
//! (floored at 8 for the reduced scales used here).

use crate::context::{ExpContext, Workload};
use crate::report::{fmt_qps, Table};
use cagra::build::{build_graph, GraphConfig};
use dataset::presets::PresetName;
use dataset::Dataset;
use dataset::VectorStore;
use knn::topk::Neighbor;
use nssg::{beam_search, Nssg, NssgParams};
use std::time::Instant;

/// One curve point of the comparison.
#[derive(Clone, Copy, Debug)]
pub struct QualityPoint {
    /// NSSG pool width `L`.
    pub l: usize,
    /// recall@10.
    pub recall: f64,
    /// Single-threaded CPU QPS.
    pub qps: f64,
}

/// Search both graphs with the NSSG beam search at the given widths.
pub fn measure(
    wl: &Workload,
    ctx: &ExpContext,
    ls: &[usize],
) -> Vec<(&'static str, Vec<QualityPoint>)> {
    let clone = || Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    let (nssg_index, _) = Nssg::build(clone(), wl.metric, NssgParams::new(wl.degree()));

    // Match the CAGRA degree to NSSG's observed average degree. The
    // paper floors to a multiple of 16 (their degrees are 40-90); at
    // this reduced scale that would round a degree-14 NSSG graph down
    // to 8, so floor to a multiple of 4 instead.
    let avg = nssg_index.average_degree();
    let matched = (((avg as usize) / 4) * 4).max(8).min(wl.degree() * 2);
    // d_init = 3d, the richer candidate pool the paper's Fig. 3 runs
    // use; at reduced dataset scale the default 2d leaves clustered
    // presets with too few cross-cluster candidates.
    let matched = matched.min(wl.degree().max(8));
    let config = GraphConfig { intermediate_degree: 3 * matched, ..GraphConfig::new(matched) };
    let (cagra_graph, _) = build_graph(&wl.base, wl.metric, &config);
    let cagra_adj: Vec<Vec<u32>> =
        (0..cagra_graph.len()).map(|v| cagra_graph.neighbors(v).to_vec()).collect();

    let gt = wl.ground_truth(ctx.k);
    let run = |adjacency: &[Vec<u32>]| -> Vec<QualityPoint> {
        ls.iter()
            .map(|&l| {
                let t0 = Instant::now();
                let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(wl.queries.len());
                for qi in 0..wl.queries.len() {
                    let (res, _) = beam_search(
                        adjacency,
                        &wl.base,
                        wl.metric,
                        wl.queries.row(qi),
                        ctx.k,
                        l,
                        l, // NSSG seeds its pool with L random points
                        0x12 ^ qi as u64,
                    );
                    results.push(res);
                }
                let wall = t0.elapsed().as_secs_f64();
                QualityPoint {
                    l,
                    recall: crate::recall::recall_at_k(&results, &gt, ctx.k),
                    qps: wl.queries.len() as f64 / wall,
                }
            })
            .collect()
    };

    vec![("CAGRA graph", run(&cagra_adj)), ("NSSG graph", run(nssg_index.adjacency()))]
}

/// Run on the figure's four datasets.
pub fn run(ctx: &ExpContext) {
    let ls = [16, 32, 64, 128];
    let mut t = Table::new(&["dataset", "graph", "L", "recall@10", "QPS (1 thread)"]);
    for preset in [PresetName::Sift, PresetName::Gist, PresetName::Glove, PresetName::NyTimes] {
        let wl = Workload::load(preset, ctx);
        for (label, points) in measure(&wl, ctx, &ls) {
            for p in points {
                t.row(vec![
                    preset.label().to_string(),
                    label.to_string(),
                    p.l.to_string(),
                    format!("{:.4}", p.recall),
                    fmt_qps(p.qps),
                ]);
            }
        }
    }
    t.print("Fig. 12 — graph quality under NSSG's search implementation");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cagra_graph_is_roughly_equivalent_to_nssg() {
        let ctx = ExpContext { n: 900, queries: 30, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let out = measure(&wl, &ctx, &[64]);
        let cagra_recall = out[0].1[0].recall;
        let nssg_recall = out[1].1[0].recall;
        assert!(cagra_recall > 0.7, "CAGRA-graph recall {cagra_recall}");
        assert!(
            (cagra_recall - nssg_recall).abs() < 0.15,
            "graphs should be comparable: CAGRA {cagra_recall} vs NSSG {nssg_recall}"
        );
    }
}
