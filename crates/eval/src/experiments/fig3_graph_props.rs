//! Fig. 3: 2-hop node counts and strong CC for the plain k-NN graph,
//! each partial optimization, and the full CAGRA graph.
//!
//! Paper claims to reproduce: reordering is the bigger lever on the
//! 2-hop count; reverse edges are the bigger lever on strong CC.

use crate::context::{ExpContext, Workload};
use crate::report::Table;
use cagra::optimize::{optimize, OptimizeOptions};
use cagra::params::ReorderStrategy;
use dataset::presets::PresetName;
use dataset::VectorStore;
use graph::stats::graph_stats;
use graph::two_hop::max_two_hop;
use graph::AdjacencyGraph;
use knn::{NnDescent, NnDescentParams};

/// Graph variants of the ablation, in the figure's order.
const VARIANTS: [(&str, bool, bool); 4] = [
    ("knn (top-d)", false, false),
    ("reorder only", true, false),
    ("reverse only", false, true),
    ("CAGRA (full)", true, true),
];

/// Run the ablation on the figure's two datasets (SIFT-like easy,
/// GloVe-like hard), `d_init = 3d` as in the paper.
pub fn run(ctx: &ExpContext) {
    let mut t =
        Table::new(&["dataset", "variant", "avg 2-hop", "2-hop max", "strong CC", "largest CC %"]);
    for preset in [PresetName::Sift, PresetName::Glove] {
        let wl = Workload::load(preset, ctx);
        rows_for(&wl, &mut t);
    }
    t.print("Fig. 3 — reachability ablation (d_init = 3d)");
}

/// Compute the four variants' stats for one workload.
pub fn rows_for(wl: &Workload, t: &mut Table) {
    let d = wl.degree();
    let knn = NnDescent::new(NnDescentParams::new(3 * d)).build(&wl.base, wl.metric);
    let stride = (wl.base.len() / 2000).max(1); // sample 2-hop on big graphs
    for (label, reorder, reverse) in VARIANTS {
        let opts = OptimizeOptions {
            degree: d,
            strategy: ReorderStrategy::RankBased,
            reorder,
            reverse,
            threads: 0,
        };
        let g = optimize(&knn, &wl.base, wl.metric, &opts);
        let stats = graph_stats(&AdjacencyGraph::from_fixed(&g), stride);
        t.row(vec![
            wl.preset.name.label().to_string(),
            label.to_string(),
            format!("{:.1}", stats.avg_two_hop),
            max_two_hop(d).to_string(),
            stats.strong_cc.to_string(),
            format!("{:.1}", 100.0 * stats.largest_cc_fraction),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_optimization_improves_both_metrics() {
        let ctx = ExpContext { n: 500, queries: 2, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);
        let mut t = Table::new(&[
            "dataset",
            "variant",
            "avg 2-hop",
            "2-hop max",
            "strong CC",
            "largest CC %",
        ]);
        rows_for(&wl, &mut t);
        assert_eq!(t.len(), 4);
        let render = t.render();
        // Parse back the two metric columns for knn vs full.
        let lines: Vec<&str> = render.lines().skip(2).collect();
        let parse = |line: &str| -> (f64, usize) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            // dataset, variant(words), 2hop, max, cc, largest
            let ncells = cells.len();
            (cells[ncells - 4].parse().unwrap(), cells[ncells - 2].parse().unwrap())
        };
        let (knn_2hop, knn_cc) = parse(lines[0]);
        let (full_2hop, full_cc) = parse(lines[3]);
        assert!(full_2hop > knn_2hop, "2-hop: full {full_2hop} vs knn {knn_2hop}");
        assert!(full_cc <= knn_cc, "CC: full {full_cc} vs knn {knn_cc}");
    }
}
