//! Fig. 10: single-CTA vs multi-CTA, for a single query (top) and a
//! large batch (bottom).
//!
//! Paper claims to reproduce: at batch 1 multi-CTA wins on both
//! datasets; at batch 10k single-CTA generally wins, except when very
//! high recall (large itopk) is required on the harder dataset, where
//! multi-CTA overtakes.

use crate::context::{ExpContext, Workload};
use crate::experiments::{build_cagra, itopk_sweep};
use crate::report::{fmt_qps, Table};
use crate::sweep::{cagra_curve, CurvePoint};
use cagra::search::planner::Mode;
use cagra::HashPolicy;
use dataset::presets::PresetName;

/// Run both regimes on DEEP-like and GloVe-like data.
pub fn run(ctx: &ExpContext) {
    for (regime, single_query) in [("single query", true), ("large batch", false)] {
        let mut t = Table::new(&["dataset", "mode", "itopk", "recall@10", "QPS (sim)"]);
        for preset in [PresetName::Deep, PresetName::Glove] {
            let wl = Workload::load(preset, ctx);
            for (label, curve) in curves(&wl, ctx, single_query) {
                for p in curve {
                    t.row(vec![
                        preset.label().to_string(),
                        label.to_string(),
                        p.param.to_string(),
                        format!("{:.4}", p.recall),
                        fmt_qps(p.qps_sim),
                    ]);
                }
            }
        }
        t.print(&format!("Fig. 10 — single- vs multi-CTA ({regime})"));
    }
}

/// Single- and multi-CTA curves for one workload and regime. Table II:
/// single-CTA pairs with the forgettable shared-memory hash, multi-CTA
/// with the standard device-memory hash.
pub fn curves(
    wl: &Workload,
    ctx: &ExpContext,
    single_query: bool,
) -> Vec<(&'static str, Vec<CurvePoint>)> {
    let (index, _) = build_cagra(wl);
    let sweep = itopk_sweep(ctx.k, 256);
    vec![
        (
            "single-CTA",
            cagra_curve(
                &index,
                wl,
                ctx.k,
                &sweep,
                Mode::SingleCta,
                HashPolicy::Forgettable { bits: 11, reset_interval: 1 },
                8,
                4,
                ctx.batch_target,
                single_query,
            ),
        ),
        (
            "multi-CTA",
            cagra_curve(
                &index,
                wl,
                ctx.k,
                &sweep,
                Mode::MultiCta,
                HashPolicy::Standard,
                8,
                4,
                ctx.batch_target,
                single_query,
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::qps_at_recall;

    #[test]
    fn multi_cta_wins_single_query_single_cta_wins_large_batch() {
        let ctx = ExpContext { n: 900, queries: 20, batch_target: 5000, ..ExpContext::default() };
        let wl = Workload::load(PresetName::Deep, &ctx);

        let single_q = curves(&wl, &ctx, true);
        let floor = 0.9;
        let sc = qps_at_recall(&single_q[0].1, floor, true);
        let mc = qps_at_recall(&single_q[1].1, floor, true);
        assert!(mc > sc, "batch=1: multi-CTA {mc} must beat single-CTA {sc}");

        let batch = curves(&wl, &ctx, false);
        let sc = qps_at_recall(&batch[0].1, floor, true);
        let mc = qps_at_recall(&batch[1].1, floor, true);
        assert!(sc > mc, "batch=10k: single-CTA {sc} must beat multi-CTA {mc}");
    }
}
