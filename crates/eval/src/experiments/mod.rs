//! One runner per table/figure of the paper (ids match DESIGN.md).

pub mod ext_churn;
pub mod ext_pq;
pub mod ext_relabel;
pub mod ext_search_ablation;
pub mod ext_sharding;
pub mod fig10_cta_modes;
pub mod fig11_construction;
pub mod fig12_graph_quality;
pub mod fig13_large_batch;
pub mod fig14_single_query;
pub mod fig15_scaling_build;
pub mod fig16_scaling_search;
pub mod fig3_graph_props;
pub mod fig4_opt_time;
pub mod fig5_reorder_search;
pub mod fig8_team_size;
pub mod fig9_hash;
pub mod headline;
pub mod table1;

use crate::context::{ExpContext, Workload};
use cagra::build::{build_graph, BuildReport, GraphConfig};
use cagra::CagraIndex;
use dataset::Dataset;
use dataset::VectorStore;

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1",
    "fig3",
    "fig4",
    "fig5",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "headline",
    "ext-shard",
    "ext-search",
    "ext-relabel",
    "ext-pq",
    "ext-churn",
];

/// Dispatch an experiment by id. Returns false for unknown ids.
pub fn run(id: &str, ctx: &ExpContext) -> bool {
    match id {
        "table1" => table1::run(ctx),
        "fig3" => fig3_graph_props::run(ctx),
        "fig4" => fig4_opt_time::run(ctx),
        "fig5" => fig5_reorder_search::run(ctx),
        "fig8" => fig8_team_size::run(ctx),
        "fig9" => fig9_hash::run(ctx),
        "fig10" => fig10_cta_modes::run(ctx),
        "fig11" => fig11_construction::run(ctx),
        "fig12" => fig12_graph_quality::run(ctx),
        "fig13" => fig13_large_batch::run(ctx),
        "fig14" => fig14_single_query::run(ctx),
        "fig15" => fig15_scaling_build::run(ctx),
        "fig16" => fig16_scaling_search::run(ctx),
        "headline" => headline::run(ctx),
        "ext-shard" => ext_sharding::run(ctx),
        "ext-search" => ext_search_ablation::run(ctx),
        "ext-relabel" => ext_relabel::run(ctx),
        "ext-pq" => ext_pq::run(ctx),
        "ext-churn" => ext_churn::run(ctx),
        _ => return false,
    }
    true
}

/// Build a CAGRA index over a workload's base vectors (cloned, since
/// the workload keeps its own copy for ground truth).
pub(crate) fn build_cagra(wl: &Workload) -> (CagraIndex<Dataset>, BuildReport) {
    let base = Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim());
    CagraIndex::build(base, wl.metric, &GraphConfig::new(wl.degree()))
}

/// Build just the CAGRA graph (when no index wrapper is needed).
pub(crate) fn build_cagra_graph(wl: &Workload) -> (graph::FixedDegreeGraph, BuildReport) {
    build_graph(&wl.base, wl.metric, &GraphConfig::new(wl.degree()))
}

/// The itopk sweep used by the recall↔QPS experiments: k upward in
/// doublings (the paper sweeps the same way).
pub(crate) fn itopk_sweep(k: usize, max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = k.max(16);
    while x <= max {
        v.push(x);
        x *= 2;
    }
    if v.is_empty() {
        v.push(k.max(16));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itopk_sweep_doubles_from_k() {
        assert_eq!(itopk_sweep(10, 128), vec![16, 32, 64, 128]);
        assert_eq!(itopk_sweep(100, 64), vec![100]);
    }

    #[test]
    fn unknown_experiment_returns_false() {
        assert!(!run("nope", &ExpContext::default()));
    }

    #[test]
    fn registry_lists_every_runner() {
        assert_eq!(ALL.len(), 19);
    }
}
