//! Experiment driver: `eval <experiment-id>... | all | list`.
//!
//! Scale knobs come from the environment (`CAGRA_N`, `CAGRA_QUERIES`,
//! `CAGRA_BATCH`) or the `--n/--queries/--batch` flags. Example:
//!
//! ```text
//! cargo run -p eval --release -- fig13 --n 8000
//! cargo run -p eval --release -- all
//! cargo run -p eval --features obs -- fig10 --metrics-out metrics.json
//! ```

use eval::context::ExpContext;
use eval::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpContext::default();
    let mut ids: Vec<String> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--n" => ctx.n = parse(it.next(), "--n"),
            "--queries" => ctx.queries = parse(it.next(), "--queries"),
            "--batch" => ctx.batch_target = parse(it.next(), "--batch"),
            "--k" => ctx.k = parse(it.next(), "--k"),
            "--seed" => ctx.seed = parse(it.next(), "--seed") as u64,
            "--metrics-out" => {
                metrics_out = Some(it.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a path");
                    std::process::exit(2);
                }))
            }
            "list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: eval <experiment-id>... | all | list [--n N] [--queries Q] [--batch B] [--k K] [--seed S] [--metrics-out FILE]");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }
    println!(
        "# context: n={} queries={} k={} batch_target={} seed={}",
        ctx.n, ctx.queries, ctx.k, ctx.batch_target, ctx.seed
    );
    for id in ids {
        let t0 = std::time::Instant::now();
        if !experiments::run(&id, &ctx) {
            eprintln!("unknown experiment: {id}");
            std::process::exit(2);
        }
        println!("[{id} done in {:.1} s]", t0.elapsed().as_secs_f64());
    }
    if let Some(path) = metrics_out {
        let snap = obs::metrics().snapshot();
        if let Err(e) = std::fs::write(&path, snap.to_json()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("\n{}", snap.render());
        println!("[metrics written to {path}]");
        if !snap.enabled {
            eprintln!("note: built without the `obs` feature; metrics are empty (rebuild with `--features obs`)");
        }
    }
}

fn parse(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a number");
        std::process::exit(2);
    })
}
