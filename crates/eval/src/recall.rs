//! Recall (Eq. 2 of the paper): `|ANNS ∩ NNS| / |NNS|`.

use knn::topk::Neighbor;

/// recall@k over a batch: the fraction of true top-k ids recovered.
/// Each result row is truncated/padded to `k`; ground-truth rows
/// shorter than `k` (dataset smaller than `k`) shrink the denominator.
pub fn recall_at_k(results: &[Vec<Neighbor>], gt: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(results.len(), gt.len(), "result and ground-truth batch sizes differ");
    let mut hit = 0usize;
    let mut total = 0usize;
    for (res, truth) in results.iter().zip(gt) {
        let truth = &truth[..truth.len().min(k)];
        total += truth.len();
        for t in truth {
            if res.iter().take(k).any(|n| n.id == *t) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// recall@k when the ANNS side is plain id lists.
pub fn recall_ids(results: &[Vec<u32>], gt: &[Vec<u32>], k: usize) -> f64 {
    let wrapped: Vec<Vec<Neighbor>> =
        results.iter().map(|r| r.iter().map(|&id| Neighbor::new(id, 0.0)).collect()).collect();
    recall_at_k(&wrapped, gt, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(ids: &[u32]) -> Vec<Neighbor> {
        ids.iter().map(|&i| Neighbor::new(i, 0.0)).collect()
    }

    #[test]
    fn perfect_recall() {
        let res = vec![n(&[1, 2, 3])];
        let gt = vec![vec![3, 1, 2]];
        assert_eq!(recall_at_k(&res, &gt, 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        let res = vec![n(&[1, 9, 8])];
        let gt = vec![vec![1, 2, 3]];
        assert!((recall_at_k(&res, &gt, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_truncates_both_sides() {
        // Result has the right id but only beyond position k.
        let res = vec![n(&[9, 8, 1])];
        let gt = vec![vec![1]];
        assert_eq!(recall_at_k(&res, &gt, 2), 0.0);
        assert_eq!(recall_at_k(&res, &gt, 3), 1.0);
    }

    #[test]
    fn short_ground_truth_shrinks_denominator() {
        let res = vec![n(&[1, 2])];
        let gt = vec![vec![1]]; // dataset had only one point
        assert_eq!(recall_at_k(&res, &gt, 10), 1.0);
    }

    #[test]
    fn empty_batch_is_perfect() {
        assert_eq!(recall_at_k(&[], &[], 10), 1.0);
    }

    #[test]
    fn id_list_variant_agrees() {
        let res = vec![vec![1, 9, 8]];
        let gt = vec![vec![1, 2, 3]];
        assert!((recall_ids(&res, &gt, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "batch sizes differ")]
    fn mismatched_batches_rejected() {
        recall_at_k(&[], &[vec![1]], 1);
    }
}
