//! Recall↔QPS sweeps.
//!
//! Every throughput plot in the paper is a curve traced by widening
//! the search (CAGRA's `itopk`, HNSW's `ef`, NSSG's `L`, the GPU
//! baselines' beam). Each sweep point reports
//!
//! * `recall` — exact, against brute-force ground truth;
//! * `qps_cpu` — wall-clock batch throughput on this host (the
//!   number used for the CPU baselines, like the paper's 64-thread
//!   HNSW runs — scaled by this machine's single core);
//! * `qps_sim` — simulated A100 throughput from the recorded traces
//!   (the number used for CAGRA/GGNN/GANNS, which the paper runs on
//!   the GPU). Traces are tiled up to the experiment's batch target so
//!   a 200-query measurement prices like the paper's 10k-query batch.

use crate::context::Workload;
use crate::recall::recall_at_k;
use cagra::search::planner::Mode;
use cagra::search::trace::SearchTrace;
use cagra::{CagraIndex, HashPolicy, SearchParams};
use dataset::VectorStore;
use gpu_sim::{simulate_batch, DeviceSpec, Mapping};
use hnsw::Hnsw;
use knn::topk::Neighbor;
use nssg::Nssg;
use std::time::Instant;

/// One point of a recall↔QPS curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// The width parameter swept (itopk / ef / L / beam).
    pub param: usize,
    /// recall@k against exact ground truth.
    pub recall: f64,
    /// Wall-clock batch QPS on this host.
    pub qps_cpu: f64,
    /// Simulated A100 QPS (0 when not applicable).
    pub qps_sim: f64,
    /// True when the measured batch ran on recycled per-thread search
    /// scratch (the zero-allocation path) — recorded so QPS numbers
    /// state which execution path produced them.
    pub scratch_reused: bool,
}

/// Tile measured traces cyclically up to `target` queries.
fn tile(traces: &[SearchTrace], target: usize) -> Vec<SearchTrace> {
    assert!(!traces.is_empty());
    (0..target.max(traces.len())).map(|i| traces[i % traces.len()].clone()).collect()
}

/// Simulated QPS for a large batch (tiled to `batch_target`).
pub fn sim_batch_qps(
    traces: &[SearchTrace],
    dim: usize,
    bytes_per_elem: usize,
    team: usize,
    mapping: Mapping,
    batch_target: usize,
) -> f64 {
    let device = DeviceSpec::a100();
    let tiled = tile(traces, batch_target);
    simulate_batch(&device, &tiled, dim, bytes_per_elem, team, mapping).qps
}

/// Simulated QPS for online (batch = 1) serving: mean latency over the
/// measured queries.
pub fn sim_single_qps(
    traces: &[SearchTrace],
    dim: usize,
    bytes_per_elem: usize,
    team: usize,
    mapping: Mapping,
) -> f64 {
    let device = DeviceSpec::a100();
    let total: f64 = traces
        .iter()
        .map(|t| {
            simulate_batch(&device, std::slice::from_ref(t), dim, bytes_per_elem, team, mapping)
                .seconds
        })
        .sum();
    traces.len() as f64 / total
}

/// Sweep CAGRA itopk values.
#[allow(clippy::too_many_arguments)]
pub fn cagra_curve<S: VectorStore>(
    index: &CagraIndex<S>,
    wl: &Workload,
    k: usize,
    itopks: &[usize],
    mode: Mode,
    hash: HashPolicy,
    team: usize,
    bytes_per_elem: usize,
    batch_target: usize,
    single_query: bool,
) -> Vec<CurvePoint> {
    let gt = wl.ground_truth(k);
    let mapping = match mode {
        Mode::SingleCta => Mapping::SingleCta,
        Mode::MultiCta => Mapping::MultiCta,
    };
    itopks
        .iter()
        .map(|&itopk| {
            let mut p = SearchParams::for_k(k);
            p.itopk = itopk.max(k);
            p.hash = hash;
            p.team_size = team;
            let t0 = Instant::now();
            let out = index.search_batch_traced(&wl.queries, k, &p, mode);
            let wall = t0.elapsed().as_secs_f64();
            let results: Vec<Vec<Neighbor>> = out.iter().map(|(r, _)| r.clone()).collect();
            let traces: Vec<SearchTrace> = out.into_iter().map(|(_, t)| t).collect();
            let dim = wl.base.dim();
            let qps_sim = if single_query {
                sim_single_qps(&traces, dim, bytes_per_elem, team, mapping)
            } else {
                sim_batch_qps(&traces, dim, bytes_per_elem, team, mapping, batch_target)
            };
            CurvePoint {
                param: itopk,
                recall: recall_at_k(&results, &gt, k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim,
                scratch_reused: traces.iter().any(|t| t.scratch_reused),
            }
        })
        .collect()
}

/// Sweep HNSW ef values (CPU wall clock only, like the paper).
pub fn hnsw_curve<S: VectorStore>(
    h: &Hnsw<S>,
    wl: &Workload,
    k: usize,
    efs: &[usize],
    single_query: bool,
) -> Vec<CurvePoint> {
    let gt = wl.ground_truth(k);
    efs.iter()
        .map(|&ef| {
            let (results, wall) = if single_query {
                // Serve queries one at a time (online mode).
                let t0 = Instant::now();
                let mut results = Vec::with_capacity(wl.queries.len());
                for qi in 0..wl.queries.len() {
                    results.push(h.search(wl.queries.row(qi), k, ef));
                }
                (results, t0.elapsed().as_secs_f64())
            } else {
                let t0 = Instant::now();
                let r = h.search_batch(&wl.queries, k, ef);
                (r, t0.elapsed().as_secs_f64())
            };
            CurvePoint {
                param: ef,
                recall: recall_at_k(&results, &gt, k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim: 0.0,
                scratch_reused: false,
            }
        })
        .collect()
}

/// Sweep NSSG pool widths (CPU wall clock).
pub fn nssg_curve<S: VectorStore>(
    g: &Nssg<S>,
    wl: &Workload,
    k: usize,
    ls: &[usize],
) -> Vec<CurvePoint> {
    let gt = wl.ground_truth(k);
    ls.iter()
        .map(|&l| {
            let t0 = Instant::now();
            let results = g.search_batch(&wl.queries, k, l);
            let wall = t0.elapsed().as_secs_f64();
            CurvePoint {
                param: l,
                recall: recall_at_k(&results, &gt, k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim: 0.0,
                scratch_reused: false,
            }
        })
        .collect()
}

/// Sweep a traced GPU baseline (GGNN/GANNS): `run(beam)` returns the
/// per-query results and traces; costing uses the SONG kernel shape
/// (full-warp distances, device-memory hash).
pub fn traced_curve(
    wl: &Workload,
    k: usize,
    beams: &[usize],
    batch_target: usize,
    mut run: impl FnMut(usize) -> Vec<(Vec<Neighbor>, SearchTrace)>,
) -> Vec<CurvePoint> {
    let gt = wl.ground_truth(k);
    beams
        .iter()
        .map(|&beam| {
            let t0 = Instant::now();
            let out = run(beam);
            let wall = t0.elapsed().as_secs_f64();
            let results: Vec<Vec<Neighbor>> = out.iter().map(|(r, _)| r.clone()).collect();
            let traces: Vec<SearchTrace> = out.into_iter().map(|(_, t)| t).collect();
            CurvePoint {
                param: beam,
                recall: recall_at_k(&results, &gt, k),
                qps_cpu: wl.queries.len() as f64 / wall,
                qps_sim: sim_batch_qps(
                    &traces,
                    wl.base.dim(),
                    4,
                    32,
                    Mapping::SingleCta,
                    batch_target,
                ),
                scratch_reused: traces.iter().any(|t| t.scratch_reused),
            }
        })
        .collect()
}

/// The QPS a curve reaches at a recall floor (linear scan; 0 when the
/// floor is never reached). Used by the headline speedup table.
pub fn qps_at_recall(curve: &[CurvePoint], floor: f64, sim: bool) -> f64 {
    curve
        .iter()
        .filter(|p| p.recall >= floor)
        .map(|p| if sim { p.qps_sim } else { p.qps_cpu })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExpContext;
    use cagra::build::GraphConfig;
    use dataset::presets::PresetName;
    use distance::Metric;

    fn small_ctx() -> ExpContext {
        ExpContext { n: 600, queries: 20, batch_target: 100, ..ExpContext::default() }
    }

    #[test]
    fn cagra_curve_recall_grows_with_itopk() {
        let ctx = small_ctx();
        let wl = Workload::load(PresetName::Deep, &ctx);
        let (index, _) = CagraIndex::build(
            dataset::Dataset::from_flat(wl.base.as_flat().to_vec(), wl.base.dim()),
            Metric::SquaredL2,
            &GraphConfig::new(16),
        );
        let curve = cagra_curve(
            &index,
            &wl,
            10,
            &[16, 128],
            Mode::SingleCta,
            HashPolicy::Standard,
            8,
            4,
            ctx.batch_target,
            false,
        );
        assert_eq!(curve.len(), 2);
        assert!(curve[1].recall >= curve[0].recall);
        assert!(curve.iter().all(|p| p.qps_cpu > 0.0 && p.qps_sim > 0.0));
    }

    #[test]
    fn qps_at_recall_takes_best_qualifying_point() {
        let curve = vec![
            CurvePoint {
                param: 1,
                recall: 0.5,
                qps_cpu: 100.0,
                qps_sim: 1000.0,
                scratch_reused: true,
            },
            CurvePoint {
                param: 2,
                recall: 0.95,
                qps_cpu: 50.0,
                qps_sim: 500.0,
                scratch_reused: true,
            },
            CurvePoint {
                param: 3,
                recall: 0.99,
                qps_cpu: 10.0,
                qps_sim: 100.0,
                scratch_reused: true,
            },
        ];
        assert_eq!(qps_at_recall(&curve, 0.9, false), 50.0);
        assert_eq!(qps_at_recall(&curve, 0.9, true), 500.0);
        assert_eq!(qps_at_recall(&curve, 0.999, true), 0.0);
    }

    #[test]
    fn tile_cycles_traces() {
        let t = SearchTrace { itopk: 8, ..Default::default() };
        let tiled = tile(std::slice::from_ref(&t), 5);
        assert_eq!(tiled.len(), 5);
        assert!(tiled.iter().all(|x| x.itopk == 8));
    }
}
