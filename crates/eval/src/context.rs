//! Experiment context: scaled workloads plus cached ground truth.

use dataset::presets::{DatasetPreset, PresetName};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use knn::brute::ground_truth;
use std::cell::RefCell;
use std::collections::HashMap;

/// Global experiment knobs. Paper sizes (290k–100M vectors, 10k-query
/// batches) do not fit this 1-core reproduction host; the defaults are
/// scaled down and every runner records the scale it used. Environment
/// overrides: `CAGRA_N`, `CAGRA_QUERIES`, `CAGRA_BATCH`.
#[derive(Clone, Copy, Debug)]
pub struct ExpContext {
    /// Base vectors per dataset.
    pub n: usize,
    /// Held-out queries actually searched.
    pub queries: usize,
    /// Result size `k` (paper reports recall@10 unless noted).
    pub k: usize,
    /// Batch size the GPU simulation is asked to price (the paper's
    /// large-batch experiments use 10k; measured traces are tiled up
    /// to this size).
    pub batch_target: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for ExpContext {
    fn default() -> Self {
        let env =
            |k: &str, d: usize| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
        ExpContext {
            n: env("CAGRA_N", 4000),
            queries: env("CAGRA_QUERIES", 200),
            k: 10,
            batch_target: env("CAGRA_BATCH", 10_000),
            seed: 0xda7a,
        }
    }
}

/// A loaded synthetic workload with lazily computed ground truth.
pub struct Workload {
    /// The Table I row this mimics.
    pub preset: DatasetPreset,
    /// Base vectors.
    pub base: Dataset,
    /// Query vectors.
    pub queries: Dataset,
    /// Metric (squared L2 throughout, as in the paper's main runs).
    pub metric: Metric,
    gt_cache: RefCell<HashMap<usize, Vec<Vec<u32>>>>,
}

impl Workload {
    /// Generate the workload for `preset` at the context's scale.
    pub fn load(preset: PresetName, ctx: &ExpContext) -> Workload {
        let p = DatasetPreset::get(preset);
        let (base, queries) = p.spec(ctx.n, ctx.queries, ctx.seed).generate();
        Workload {
            preset: p,
            base,
            queries,
            metric: Metric::SquaredL2,
            gt_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Generate at an explicit size (scaling studies, Figs. 15/16).
    pub fn load_sized(preset: PresetName, n: usize, queries: usize, seed: u64) -> Workload {
        let p = DatasetPreset::get(preset);
        let (base, queries) = p.spec(n, queries, seed).generate();
        Workload {
            preset: p,
            base,
            queries,
            metric: Metric::SquaredL2,
            gt_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Exact top-k ids per query (computed once, cached).
    pub fn ground_truth(&self, k: usize) -> Vec<Vec<u32>> {
        if let Some(gt) = self.gt_cache.borrow().get(&k) {
            return gt.clone();
        }
        let gt = ground_truth(&self.base, self.metric, &self.queries, k);
        self.gt_cache.borrow_mut().insert(k, gt.clone());
        gt
    }

    /// The paper's CAGRA degree for this dataset, capped so
    /// `d_init = 2d` always fits the scaled dataset.
    pub fn degree(&self) -> usize {
        let cap = (self.base.len().saturating_sub(1) / 4).max(4);
        self.preset.cagra_degree.min(cap.next_power_of_two() / 2 * 2).max(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::VectorStore;

    #[test]
    fn context_defaults_are_positive() {
        let c = ExpContext::default();
        assert!(c.n > 0 && c.queries > 0 && c.k > 0 && c.batch_target > 0);
    }

    #[test]
    fn workload_shapes_match_preset() {
        let ctx = ExpContext { n: 300, queries: 10, ..ExpContext::default() };
        let w = Workload::load(PresetName::Deep, &ctx);
        assert_eq!(w.base.dim(), 96);
        assert_eq!(w.base.len(), 300);
        assert_eq!(w.queries.len(), 10);
    }

    #[test]
    fn ground_truth_is_cached_and_correct_shape() {
        let ctx = ExpContext { n: 200, queries: 5, ..ExpContext::default() };
        let w = Workload::load(PresetName::Sift, &ctx);
        let a = w.ground_truth(3);
        let b = w.ground_truth(3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn degree_is_capped_on_tiny_datasets() {
        let w = Workload::load_sized(PresetName::Glove, 100, 5, 1);
        // GloVe's paper degree is 80; a 100-vector dataset cannot
        // support d_init = 160.
        assert!(w.degree() * 2 < 100, "degree {} too large", w.degree());
    }
}
