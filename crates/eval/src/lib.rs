//! Experiment harness for the CAGRA reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure
//! of the paper (see DESIGN.md's per-experiment index); the `eval`
//! binary dispatches to them by id (`cargo run -p eval --release --
//! fig13`). Shared machinery: workload loading with ground-truth
//! caching ([`context`]), recall ([`recall`]), recall↔QPS sweeps
//! ([`sweep`]) and plain-text tables ([`report`]).

pub mod context;
pub mod experiments;
pub mod recall;
pub mod report;
pub mod sweep;

pub use context::{ExpContext, Workload};
pub use recall::recall_at_k;
pub use report::Table;
