//! No-panic guarantee of the fallible public API: for *any*
//! combination of dataset shape, graph degree, query dimension, and
//! knob settings — including degenerate ones (n = 0, n = 1,
//! n < itopk, self-loop-only graphs, zero-bit hashes) — the `try_*`
//! entry points return `Ok` or a typed [`SearchError`], never panic.
//!
//! The second property pins the error taxonomy: `try_search_mode`
//! errors exactly when the input violates a documented rule, so the
//! fallible API neither invents spurious failures nor lets invalid
//! input through.

use cagra::params::HashPolicy;
use cagra::search::planner::Mode;
use cagra::{CagraIndex, SearchError, SearchParams};
use dataset::Dataset;
use distance::Metric;
use graph::FixedDegreeGraph;
use proptest::prelude::*;

/// Ring-shifted fixed-degree graph: node `v` points at
/// `v+1 .. v+degree` (mod n). For `n == 1` every edge is a self loop,
/// which the searcher must tolerate.
fn ring(n: usize, degree: usize) -> FixedDegreeGraph {
    let flat: Vec<u32> =
        (0..n).flat_map(|v| (1..=degree).map(move |j| ((v + j) % n.max(1)) as u32)).collect();
    FixedDegreeGraph::from_flat(flat, n, degree)
}

/// Deterministic filler vectors (an LCG; the values themselves are
/// irrelevant to the no-panic property).
fn filler(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut x = seed | 1;
    let flat: Vec<f32> = (0..n * dim)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 40) as i32 % 1000) as f32 / 16.0
        })
        .collect();
    Dataset::from_flat(flat, dim)
}

/// Mirror of the documented validity rules, computed independently of
/// `validate()` so the test catches drift in either direction.
#[allow(clippy::too_many_arguments)]
fn input_is_valid(p: &SearchParams, k: usize, n: usize, dim: usize, qdim: usize) -> bool {
    qdim == dim
        && k >= 1
        && k <= p.itopk
        && k <= n
        && p.itopk <= SearchParams::MAX_ITOPK
        && (1..=SearchParams::MAX_SEARCH_WIDTH).contains(&p.search_width)
        && matches!(p.team_size, 2 | 4 | 8 | 16 | 32)
        && (1..=SearchParams::MAX_NUM_CTA).contains(&p.num_cta)
        && p.max_iterations <= SearchParams::MAX_ITERATION_BOUND
        && p.min_iterations <= SearchParams::MAX_ITERATION_BOUND
        && match p.hash {
            HashPolicy::Standard => true,
            HashPolicy::Forgettable { bits, reset_interval } => {
                (4..=24).contains(&bits) && reset_interval >= 1
            }
        }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn try_search_mode_never_panics_and_errors_exactly_on_invalid_input(
        n in 0usize..48,
        dim in 1usize..8,
        degree in 1usize..6,
        qdim in 1usize..8,
        k in 0usize..24,
        itopk in 0usize..64,
        width in 0usize..4,
        team in 0usize..40,
        num_cta in 0usize..4,
        forgettable in any::<bool>(),
        bits in 0u8..30,
        reset in 0u8..4,
        single in any::<bool>(),
    ) {
        let index =
            CagraIndex::try_new(filler(n, dim, 7), ring(n, degree), Metric::SquaredL2).unwrap();
        let mut p = SearchParams::for_k(k.max(1));
        p.itopk = itopk;
        p.search_width = width;
        p.team_size = team;
        p.num_cta = num_cta;
        p.hash = if forgettable {
            HashPolicy::Forgettable { bits, reset_interval: reset }
        } else {
            HashPolicy::Standard
        };
        let q = vec![0.25f32; qdim];
        let mode = if single { Mode::SingleCta } else { Mode::MultiCta };
        // Reaching a match arm at all is the no-panic property.
        match index.try_search_mode(&q, k, &p, mode) {
            Ok((res, _)) => {
                prop_assert!(
                    input_is_valid(&p, k, n, dim, qdim),
                    "invalid input accepted: n={} dim={} qdim={} k={} params={:?}",
                    n, dim, qdim, k, p
                );
                prop_assert!(res.len() <= k, "{} results for k={}", res.len(), k);
                for w in res.windows(2) {
                    prop_assert!(w[0].dist <= w[1].dist, "results not sorted");
                }
                let mut ids: Vec<u32> = res.iter().map(|x| x.id).collect();
                for &id in &ids {
                    prop_assert!((id as usize) < n, "id {} out of range (n={})", id, n);
                }
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), res.len(), "duplicate ids in results");
            }
            Err(e) => {
                prop_assert!(
                    !input_is_valid(&p, k, n, dim, qdim),
                    "spurious {e} for valid input: n={} dim={} qdim={} k={} params={:?}",
                    n, dim, qdim, k, p
                );
            }
        }
    }

    #[test]
    fn try_search_batch_never_panics(
        n in 0usize..40,
        dim in 1usize..6,
        degree in 1usize..5,
        nq in 0usize..5,
        qdim in 1usize..6,
        k in 0usize..12,
    ) {
        let index =
            CagraIndex::try_new(filler(n, dim, 11), ring(n, degree), Metric::SquaredL2).unwrap();
        let queries = filler(nq, qdim, 13);
        let p = SearchParams::for_k(k.max(1));
        if let Ok(res) = index.try_search_batch(&queries, k, &p) {
            prop_assert_eq!(res.len(), nq);
        }
        // Traced form takes the same path through validation.
        let _ = index.try_search_batch_traced(&queries, k, &p, Mode::SingleCta);
    }

    #[test]
    fn try_new_rejects_exactly_size_mismatches(
        n_store in 0usize..30,
        n_graph in 0usize..30,
        dim in 1usize..6,
        degree in 1usize..5,
    ) {
        let r = CagraIndex::try_new(
            filler(n_store, dim, 17),
            ring(n_graph, degree),
            Metric::SquaredL2,
        );
        if n_store == n_graph {
            prop_assert!(r.is_ok());
        } else {
            prop_assert_eq!(
                r.err(),
                Some(SearchError::SizeMismatch { store: n_store, graph: n_graph })
            );
        }
    }
}

/// The exact-k contract on healthy input: a valid request over a
/// dataset with at least `itopk` vectors returns exactly `k` results.
#[test]
fn valid_request_returns_exactly_k() {
    let n = 200;
    let index = CagraIndex::try_new(filler(n, 4, 3), ring(n, 8), Metric::SquaredL2).unwrap();
    let p = SearchParams::for_k(10);
    for mode in [Mode::SingleCta, Mode::MultiCta] {
        let (res, _) = index.try_search_mode(&[0.5; 4], 10, &p, mode).unwrap();
        assert_eq!(res.len(), 10);
    }
}

/// Tiny-dataset edge cases the fuzz above covers probabilistically,
/// pinned deterministically: n = 1 (all self loops) and n < itopk.
#[test]
fn tiny_datasets_search_cleanly() {
    // n = 1: the only node is its own neighbor.
    let index = CagraIndex::try_new(filler(1, 3, 5), ring(1, 2), Metric::SquaredL2).unwrap();
    let mut p = SearchParams::for_k(1);
    p.itopk = 1;
    let res = index.try_search(&[0.0; 3], 1, &p).unwrap();
    assert_eq!(res.len(), 1);
    assert_eq!(res[0].id, 0);

    // n = 5 with the default itopk = 64 (n < itopk): valid, returns k.
    let index = CagraIndex::try_new(filler(5, 3, 5), ring(5, 2), Metric::SquaredL2).unwrap();
    let p = SearchParams::for_k(3);
    let res = index.try_search(&[0.0; 3], 3, &p).unwrap();
    assert_eq!(res.len(), 3);

    // n = 0: any k >= 1 exceeds the dataset.
    let index = CagraIndex::try_new(Dataset::empty(3), ring(0, 2), Metric::SquaredL2).unwrap();
    assert_eq!(
        index.try_search(&[0.0; 3], 1, &SearchParams::for_k(1)).err(),
        Some(SearchError::KExceedsDataset { k: 1, n: 0 })
    );
}
