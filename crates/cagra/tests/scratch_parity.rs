//! Parity between the zero-allocation batch path and per-query
//! fresh-state search.
//!
//! The scratch-reuse refactor must be invisible in results: a batch
//! searched on recycled per-thread scratch has to return bit-identical
//! `Neighbor` lists (ids *and* distances) to searching each query on a
//! brand-new scratch, across both kernel mappings and any thread
//! count. The same goes for the SIMD distance backends: forcing the
//! scalar fallback (the `CAGRA_FORCE_SCALAR` switch) must not move a
//! bit either. Everything runs inside one `#[test]` function because
//! the thread-count and backend legs mutate process-wide state
//! (`CAGRA_THREADS`, the forced-scalar flag), and Rust runs
//! `#[test]`s concurrently.

use cagra::search::planner::Mode;
use cagra::{CagraIndex, GraphConfig, HashPolicy, SearchParams, SearchScratch};
use dataset::synth::{Family, SynthSpec};
use dataset::VectorStore;
use distance::Metric;
use knn::topk::Neighbor;

fn fresh_per_query(
    index: &CagraIndex<dataset::Dataset>,
    queries: &dataset::Dataset,
    k: usize,
    params: &SearchParams,
    mode: Mode,
) -> Vec<Vec<Neighbor>> {
    (0..queries.len())
        .map(|qi| {
            let mut p = *params;
            p.seed = params.seed_for_query(qi);
            index.search_mode(queries.row(qi), k, &p, mode).0
        })
        .collect()
}

fn assert_bit_identical(batch: &[Vec<Neighbor>], fresh: &[Vec<Neighbor>], label: &str) {
    assert_eq!(batch.len(), fresh.len(), "{label}: batch size");
    for (qi, (b, f)) in batch.iter().zip(fresh).enumerate() {
        assert_eq!(b.len(), f.len(), "{label}: query {qi} result count");
        for (rank, (x, y)) in b.iter().zip(f).enumerate() {
            assert_eq!(x.id, y.id, "{label}: query {qi} rank {rank} id");
            assert_eq!(
                x.dist.to_bits(),
                y.dist.to_bits(),
                "{label}: query {qi} rank {rank} distance bits"
            );
        }
    }
}

#[test]
fn batch_scratch_reuse_is_bit_identical_to_fresh_state() {
    let spec = SynthSpec { dim: 12, n: 1200, queries: 40, family: Family::Gaussian, seed: 77 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let k = 10;

    let mut forgettable = SearchParams::for_k(k);
    forgettable.hash = HashPolicy::Forgettable { bits: 9, reset_interval: 2 };
    let standard = SearchParams { hash: HashPolicy::Standard, ..SearchParams::for_k(k) };

    for (params, params_label) in [(forgettable, "forgettable"), (standard, "standard")] {
        for mode in [Mode::SingleCta, Mode::MultiCta] {
            let fresh = fresh_per_query(&index, &queries, k, &params, mode);

            // SIMD-vs-scalar axis: the kernel backends share one
            // canonical summation order, so forcing the scalar
            // fallback must not move a single result bit — across
            // both CTA mappings and both hash policies.
            let forcing_before = distance::kernels::forcing_scalar();
            distance::kernels::force_scalar(true);
            let scalar_results = fresh_per_query(&index, &queries, k, &params, mode);
            distance::kernels::force_scalar(false);
            let simd_results = fresh_per_query(&index, &queries, k, &params, mode);
            distance::kernels::force_scalar(forcing_before);
            assert_bit_identical(
                &scalar_results,
                &simd_results,
                &format!("{params_label}/{mode:?}/scalar-vs-simd"),
            );
            assert_bit_identical(&fresh, &simd_results, &format!("{params_label}/{mode:?}/env"));

            // The batch path must match fresh state at every thread
            // count: 1 (one scratch serves the whole batch — maximum
            // reuse) and several (one scratch per worker).
            for threads in ["1", "4"] {
                std::env::set_var("CAGRA_THREADS", threads);
                let batch = index.search_batch_mode(&queries, k, &params, mode);
                std::env::remove_var("CAGRA_THREADS");
                assert_bit_identical(
                    &batch,
                    &fresh,
                    &format!("{params_label}/{mode:?}/threads={threads}"),
                );
            }

            // The traced batch path shares the scratch machinery and
            // must agree too, and its traces must report reuse for
            // every query after each worker's first.
            std::env::set_var("CAGRA_THREADS", "1");
            let traced = index.search_batch_traced(&queries, k, &params, mode);
            std::env::remove_var("CAGRA_THREADS");
            let results: Vec<Vec<Neighbor>> = traced.iter().map(|(r, _)| r.clone()).collect();
            assert_bit_identical(&results, &fresh, &format!("{params_label}/{mode:?}/traced"));
            assert!(
                !traced[0].1.scratch_reused,
                "{params_label}/{mode:?}: first query on a worker is not a reuse"
            );
            assert!(
                traced[1..].iter().all(|(_, t)| t.scratch_reused),
                "{params_label}/{mode:?}: single-threaded batch must reuse from query 1 on"
            );
        }
    }

    // Explicitly driving one scratch through many queries (the
    // `*_with` API a custom batch loop would use) also matches.
    let mut scratch = SearchScratch::new();
    for mode in [Mode::SingleCta, Mode::MultiCta] {
        let fresh = fresh_per_query(&index, &queries, k, &forgettable, mode);
        for (qi, fresh_qi) in fresh.iter().enumerate() {
            let mut p = forgettable;
            p.seed = forgettable.seed_for_query(qi);
            index.search_mode_with(queries.row(qi), k, &p, mode, &mut scratch);
            assert_bit_identical(
                std::slice::from_ref(&scratch.results().to_vec()),
                std::slice::from_ref(fresh_qi),
                &format!("manual/{mode:?}/query {qi}"),
            );
        }
    }
    assert!(scratch.reused(), "the manually driven scratch served many searches");
}
