//! Relabeling must be invisible in results: a relabeled index returns
//! bit-identical `Neighbor` lists (original ids *and* distance bits)
//! to the unpermuted index, for every strategy, both kernel mappings,
//! any thread count, and **both hash policies**. `Standard` is
//! id-independent by sizing (the table never saturates);
//! `Forgettable` became part of the contract once the reset re-seed
//! was restricted to live top-M entries — the historical caveat was
//! that hash-suppressed MAX-distance placeholders survive the top-M
//! boundary id-dependently, so re-registering them made forgettable
//! runs diverge under a permutation (see DESIGN.md, "Memory
//! locality"). Env-mutating legs (`CAGRA_THREADS`) live in one
//! `#[test]` because Rust runs `#[test]`s concurrently.

use cagra::search::planner::Mode;
use cagra::{CagraIndex, GraphConfig, HashPolicy, Permutation, RelabelStrategy, SearchParams};
use dataset::synth::{Family, SynthSpec};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use knn::topk::Neighbor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clone_of(index: &CagraIndex<Dataset>) -> CagraIndex<Dataset> {
    let store = Dataset::from_flat(index.store().as_flat().to_vec(), index.store().dim());
    CagraIndex::from_parts(store, index.graph().clone(), index.metric())
}

fn assert_bit_identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: batch size");
    for (qi, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{label}: query {qi} result count");
        for (rank, (p, q)) in x.iter().zip(y).enumerate() {
            assert_eq!(p.id, q.id, "{label}: query {qi} rank {rank} id");
            assert_eq!(
                p.dist.to_bits(),
                q.dist.to_bits(),
                "{label}: query {qi} rank {rank} distance bits"
            );
        }
    }
}

#[test]
fn relabeled_search_is_bit_identical_across_strategies_modes_threads() {
    // Clustered data: the workload relabeling is built for.
    let spec = SynthSpec {
        dim: 12,
        n: 1000,
        queries: 30,
        family: Family::Clustered { clusters: 16, spread: 0.8 },
        seed: 404,
    };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let k = 10;
    let params = SearchParams { hash: HashPolicy::Standard, ..SearchParams::for_k(k) };

    for strategy in [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder] {
        let mut relabeled = clone_of(&index);
        relabeled.relabel(strategy);
        assert!(
            relabeled.id_map().is_some(),
            "{strategy:?} on a real graph must not be the identity"
        );
        for mode in [Mode::SingleCta, Mode::MultiCta] {
            let baseline = index.search_batch_mode(&queries, k, &params, mode);
            for threads in ["1", "4"] {
                std::env::set_var("CAGRA_THREADS", threads);
                let got = relabeled.search_batch_mode(&queries, k, &params, mode);
                std::env::remove_var("CAGRA_THREADS");
                assert_bit_identical(
                    &got,
                    &baseline,
                    &format!("{strategy:?}/{mode:?}/threads={threads}"),
                );
            }
        }
    }
}

/// The Forgettable-hash leg of the parity contract (ISSUE 10 bugfix):
/// periodic resets re-seed only live entries, so relabeled forgettable
/// search is bit-identical too — across strategies, both kernel
/// mappings, several table sizes, and reset intervals (interval 1 is
/// the adversarial case: a reset before every expansion).
#[test]
fn forgettable_hash_relabeled_search_is_bit_identical() {
    let spec = SynthSpec {
        dim: 12,
        n: 900,
        queries: 25,
        family: Family::Clustered { clusters: 12, spread: 0.8 },
        seed: 1010,
    };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let k = 10;

    for (bits, reset_interval) in [(8u8, 1u8), (8, 2), (10, 1)] {
        let params = SearchParams {
            hash: HashPolicy::Forgettable { bits, reset_interval },
            ..SearchParams::for_k(k)
        };
        for strategy in [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder] {
            let mut relabeled = clone_of(&index);
            relabeled.relabel(strategy);
            for mode in [Mode::SingleCta, Mode::MultiCta] {
                let baseline = index.search_batch_mode(&queries, k, &params, mode);
                let got = relabeled.search_batch_mode(&queries, k, &params, mode);
                assert_bit_identical(
                    &got,
                    &baseline,
                    &format!(
                        "forgettable bits={bits} interval={reset_interval}/{strategy:?}/{mode:?}"
                    ),
                );
            }
        }
    }
}

#[test]
fn composed_relabels_still_match_the_unpermuted_index() {
    let spec = SynthSpec { dim: 8, n: 600, queries: 15, family: Family::Gaussian, seed: 99 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
    let k = 5;
    let params = SearchParams { hash: HashPolicy::Standard, ..SearchParams::for_k(k) };
    let baseline = index.search_batch(&queries, k, &params);

    let mut twice = clone_of(&index);
    twice.relabel(RelabelStrategy::Degree);
    twice.relabel(RelabelStrategy::Rcm);
    assert_eq!(twice.id_map().unwrap().strategy, RelabelStrategy::Rcm);
    assert_bit_identical(&twice.search_batch(&queries, k, &params), &baseline, "degree∘rcm");
}

fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut old_of_new: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        old_of_new.swap(i, j);
    }
    old_of_new
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn permutation_inverse_round_trips(n in 1usize..400, seed in 0u64..u64::MAX) {
        let perm = Permutation::from_old_of_new(random_permutation(n, seed));
        let inv = perm.inverse();
        prop_assert!(perm.then(&inv).is_identity(), "p ∘ p⁻¹ must be the identity");
        prop_assert!(inv.then(&perm).is_identity(), "p⁻¹ ∘ p must be the identity");
        for i in 0..n as u32 {
            prop_assert_eq!(perm.new_of_old(perm.old_of_new(i)), i);
            prop_assert_eq!(perm.old_of_new(perm.new_of_old(i)), i);
        }
    }
}

proptest! {
    // Each case builds a full index; keep the count small.
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_small_indexes_search_identically_after_relabel(
        seed in 0u64..1 << 32,
        strategy_pick in 0usize..3,
        clusters in 2usize..12,
    ) {
        let strategy = [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder]
            [strategy_pick];
        let spec = SynthSpec {
            dim: 6,
            n: 300,
            queries: 8,
            family: Family::Clustered { clusters, spread: 0.7 },
            seed,
        };
        let (base, queries) = spec.generate();
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
        let k = 5;
        let params = SearchParams { hash: HashPolicy::Standard, ..SearchParams::for_k(k) };
        let baseline = index.search_batch(&queries, k, &params);
        let mut relabeled = clone_of(&index);
        relabeled.relabel(strategy);
        let got = relabeled.search_batch(&queries, k, &params);
        for (b, g) in baseline.iter().zip(&got) {
            prop_assert_eq!(b, g, "{:?} moved results", strategy);
        }
    }
}
