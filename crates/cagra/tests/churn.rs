//! Recall under churn (ISSUE 10 acceptance): a [`DynamicIndex`]
//! absorbing interleaved inserts, deletes, and compactions must keep
//! recall@10 >= 0.9 against a brute-force oracle over the *live* set,
//! across at least three compaction cycles — measured both while the
//! churn sits in delta + tombstones and after each compaction swap.
//!
//! Plus property legs: searches never return a tombstoned id, results
//! stay sorted/live/deduplicated through arbitrary op sequences.

use cagra::{DynamicIndex, DynamicParams, SearchError};
use dataset::synth::{Family, SynthSpec};
use dataset::Dataset;
use distance::Metric;
use knn::topk::cmp_neighbor;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Deterministic params, no background thread: every compaction is an
/// explicit `compact_now`, so the test counts cycles exactly.
fn churn_params() -> DynamicParams {
    let mut p = DynamicParams::new(16);
    p.auto_compact = false;
    p.nsw_threshold = 96;
    p.nsw_degree = 10;
    p.min_main = 128;
    // Widen the main-graph traversal: the acceptance bar is recall,
    // not latency, and clustered data punishes a narrow itopk.
    p.search.itopk = 128;
    p.search.search_width = 2;
    p
}

/// Brute-force recall@k of the index against the live mirror.
fn recall_against_mirror(
    ix: &DynamicIndex,
    live: &BTreeMap<u32, Vec<f32>>,
    queries: &Dataset,
    k: usize,
) -> f64 {
    let ids: Vec<u32> = live.keys().copied().collect();
    let mut flat = Vec::with_capacity(live.len() * ix.dim());
    for v in live.values() {
        flat.extend_from_slice(v);
    }
    let store = Dataset::from_flat(flat, ix.dim());
    let truth = knn::brute::ground_truth(&store, ix.metric(), queries, k);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (qi, gt_rows) in truth.iter().enumerate() {
        let want: Vec<u32> = gt_rows.iter().map(|&r| ids[r as usize]).collect();
        let got = ix.search(queries.row(qi), k);
        assert_eq!(got.len(), k, "query {qi} returned {} of k = {k}", got.len());
        for nb in &got {
            assert!(
                live.contains_key(&nb.id),
                "query {qi} surfaced non-live id {} (deleted or never inserted)",
                nb.id
            );
            hits += usize::from(want.contains(&nb.id));
        }
        total += k;
    }
    hits as f64 / total as f64
}

#[test]
fn recall_stays_above_090_across_three_compaction_cycles() {
    let k = 10;
    // One big pool drawn once; churn waves consume successive slices.
    let spec = SynthSpec {
        dim: 16,
        n: 2600,
        queries: 25,
        family: Family::Clustered { clusters: 20, spread: 0.9 },
        seed: 2024,
    };
    let (pool, queries) = spec.generate();
    let ix = DynamicIndex::new(16, Metric::SquaredL2, churn_params());
    let mut live: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
    let mut next_pool = 0usize;
    let mut insert_wave = |ix: &DynamicIndex, live: &mut BTreeMap<u32, Vec<f32>>, n: usize| {
        for _ in 0..n {
            let v = pool.row(next_pool).to_vec();
            let id = ix.insert(&v).expect("insert");
            live.insert(id, v);
            next_pool += 1;
        }
    };

    // Cycle 0: bulk load, first compaction builds the main segment.
    insert_wave(&ix, &mut live, 1400);
    let r = recall_against_mirror(&ix, &live, &queries, k);
    assert!(r >= 0.9, "pre-compaction (delta-heavy) recall@10 = {r:.3}");
    ix.compact_now();
    assert!(ix.stats().main > 0, "first compaction must build a main segment");

    for cycle in 1..=3 {
        // Delete a pseudo-random seventh of the live set...
        let victims: Vec<u32> = live
            .keys()
            .copied()
            .filter(|id| id.wrapping_mul(2654435761u32.wrapping_add(cycle)) % 7 == 0)
            .collect();
        for id in &victims {
            assert!(ix.delete(*id), "cycle {cycle}: delete({id}) found nothing");
            live.remove(id);
        }
        // ...and insert a fresh wave on top.
        insert_wave(&ix, &mut live, 300);

        // Mixed state: main + delta + tombstones all in play.
        let r = recall_against_mirror(&ix, &live, &queries, k);
        assert!(r >= 0.9, "cycle {cycle} mixed-state recall@10 = {r:.3}");

        let epoch_before = ix.epoch();
        ix.compact_now();
        assert!(ix.epoch() > epoch_before, "compaction must swap the epoch");
        let s = ix.stats();
        assert_eq!(s.tombstones, 0, "cycle {cycle}: compaction must clear tombstones");
        assert_eq!(s.delta, 0, "cycle {cycle}: compaction must fold the delta");
        assert_eq!(s.live, live.len(), "cycle {cycle}: live count drifted from the mirror");

        let r = recall_against_mirror(&ix, &live, &queries, k);
        assert!(r >= 0.9, "cycle {cycle} post-compaction recall@10 = {r:.3}");
    }
    assert!(ix.stats().compactions >= 4);
}

#[test]
fn background_compactor_triggers_on_delta_growth() {
    let mut params = churn_params();
    params.auto_compact = true;
    params.max_delta = 200;
    params.min_main = 128;
    let spec = SynthSpec { dim: 8, n: 600, queries: 0, family: Family::Gaussian, seed: 5 };
    let (pool, _) = spec.generate();
    let ix = DynamicIndex::new(8, Metric::SquaredL2, params);
    for i in 0..600 {
        ix.insert(pool.row(i)).expect("insert");
    }
    // The compactor runs asynchronously; wait (bounded) for it to fold
    // at least the first trigger's worth of delta into a main segment.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while ix.stats().compactions == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let s = ix.stats();
    assert!(s.compactions >= 1, "background compactor never ran: {s:?}");
    assert!(s.main > 0, "background compaction built no main segment: {s:?}");
    assert_eq!(s.live, 600);
}

/// Mirror-checked op sequence: the merge-with-tombstones path never
/// resurrects a deleted id, never duplicates, never returns non-live
/// rows, and always returns exactly `min(k, live)` sorted results.
fn run_ops(ops: &[(u8, u16)], compact_every: usize) {
    let dim = 4;
    let mut params = DynamicParams::new(8);
    params.auto_compact = false;
    params.nsw_threshold = 12;
    params.nsw_degree = 4;
    params.min_main = 40;
    let ix = DynamicIndex::new(dim, Metric::SquaredL2, params);
    let mut live: BTreeMap<u32, Vec<f32>> = BTreeMap::new();
    let mut assigned: Vec<u32> = Vec::new();
    for (step, &(op, x)) in ops.iter().enumerate() {
        match op % 3 {
            0 => {
                let v: Vec<f32> =
                    (0..dim).map(|d| (((x as usize + 7 * d) % 97) as f32).sin()).collect();
                let id = ix.insert(&v).expect("insert");
                live.insert(id, v);
                assigned.push(id);
            }
            1 if !assigned.is_empty() => {
                let id = assigned[x as usize % assigned.len()];
                assert_eq!(ix.delete(id), live.remove(&id).is_some(), "delete({id}) disagreed");
            }
            _ => {
                let k = 1 + x as usize % 6;
                let q: Vec<f32> = (0..dim).map(|d| ((x as usize + d) as f32 * 0.3).cos()).collect();
                let got = ix.search_clamped(&q, k);
                assert_eq!(got.len(), k.min(live.len()), "clamped result size");
                assert!(got.windows(2).all(|w| cmp_neighbor(&w[0], &w[1]).is_le()), "unsorted");
                let mut seen = std::collections::BTreeSet::new();
                for nb in &got {
                    assert!(live.contains_key(&nb.id), "non-live id {} surfaced", nb.id);
                    assert!(seen.insert(nb.id), "duplicate id {} surfaced", nb.id);
                }
            }
        }
        if compact_every > 0 && step % compact_every == compact_every - 1 {
            ix.compact_now();
            assert_eq!(ix.stats().live, live.len(), "live drifted after compaction");
        }
    }
    // Terminal shape checks.
    assert_eq!(ix.live(), live.len());
    if live.is_empty() {
        assert_eq!(ix.try_search(&[0.0; 4], 1), Err(SearchError::KExceedsDataset { k: 1, n: 0 }));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_op_sequences_never_resurrect_deleted_ids(
        ops in proptest::collection::vec((0u8..3, any::<u16>()), 1..120),
        compact_every in 0usize..20,
    ) {
        run_ops(&ops, compact_every);
    }
}
