//! Instrumentation must be observation-only: search results are
//! bit-identical whether metrics recording is on or off, and the
//! recording path actually populates the registry when the `obs`
//! feature is compiled in.
//!
//! Kept as a single test: the recording kill-switch is process-global,
//! so splitting this into parallel tests would race on it.

use cagra::build::GraphConfig;
use cagra::search::planner::Mode;
use cagra::{CagraIndex, SearchParams};
use dataset::synth::{Family, SynthSpec};
use dataset::VectorStore;
use distance::Metric;

#[test]
fn recording_does_not_perturb_results() {
    let spec = SynthSpec { dim: 8, n: 600, queries: 25, family: Family::Gaussian, seed: 77 };
    let (base, queries) = spec.generate();
    let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
    let params = SearchParams::for_k(10);

    obs::reset();
    obs::set_recording(true);
    let recorded: Vec<_> = [Mode::SingleCta, Mode::MultiCta]
        .into_iter()
        .map(|m| index.search_batch_mode(&queries, 10, &params, m))
        .collect();
    let snap_on = obs::metrics().snapshot();

    obs::set_recording(false);
    let silent: Vec<_> = [Mode::SingleCta, Mode::MultiCta]
        .into_iter()
        .map(|m| index.search_batch_mode(&queries, 10, &params, m))
        .collect();
    obs::set_recording(true);

    assert_eq!(recorded, silent, "metrics recording changed search results");

    if obs::compiled_in() {
        let queries_count =
            snap_on.counters.iter().find(|c| c.name == "search.queries").map(|c| c.value).unwrap();
        assert!(queries_count >= 2 * queries.len() as u64, "recording pass saw {queries_count}");
        let iters = snap_on.histograms.iter().find(|h| h.name == "search.iterations").unwrap();
        assert!(iters.count > 0, "iteration histogram empty with obs enabled");
    } else {
        assert!(snap_on.counters.iter().all(|c| c.value == 0), "metrics nonzero with obs off");
    }
}
