//! CAGRA search-machinery invariants over arbitrary inputs.

use cagra::search::buffer::{bitonic_sort, BufEntry, SearchBuffer};
use cagra::search::hash::VisitedSet;
use cagra::search::parent::{is_parented, node_id, set_parented};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bitonic_network_sorts_like_std(dists in proptest::collection::vec(-1e6f32..1e6, 0..300)) {
        let mut entries: Vec<BufEntry> =
            dists.iter().enumerate().map(|(i, &d)| BufEntry::new(i as u32, d)).collect();
        let mut want = entries.clone();
        want.sort_by(|a, b| {
            a.dist.partial_cmp(&b.dist).unwrap().then(a.packed.cmp(&b.packed))
        });
        bitonic_sort(&mut entries);
        prop_assert_eq!(entries, want);
    }

    #[test]
    fn visited_set_matches_hashset(ids in proptest::collection::vec(0u32..10_000, 0..500)) {
        let mut ours = VisitedSet::new(14); // ample capacity
        let mut std_set = std::collections::HashSet::new();
        for &id in &ids {
            prop_assert_eq!(ours.insert(id), std_set.insert(id), "id {}", id);
        }
        prop_assert_eq!(ours.len(), std_set.len());
        for &id in &ids {
            prop_assert!(ours.contains(id));
        }
    }

    #[test]
    fn reset_then_survivors_only(ids in proptest::collection::vec(0u32..1000, 1..100), keep in proptest::collection::vec(0u32..1000, 0..20)) {
        let mut v = VisitedSet::new(12);
        for &id in &ids {
            v.insert(id);
        }
        v.reset(keep.iter().copied());
        for &id in &keep {
            prop_assert!(v.contains(id));
        }
        for &id in &ids {
            if !keep.contains(&id) {
                prop_assert!(!v.contains(id), "id {} survived reset", id);
            }
        }
    }

    #[test]
    fn parent_flag_never_corrupts_id(id in 0u32..(1 << 31)) {
        let p = set_parented(id);
        prop_assert!(is_parented(p));
        prop_assert_eq!(node_id(p), id);
        prop_assert_eq!(set_parented(p), p); // idempotent
    }

    #[test]
    fn buffer_topm_is_sorted_min_m_of_stream(chunks in proptest::collection::vec(proptest::collection::vec(0.0f32..1e6, 1..20), 1..10)) {
        let m = 8;
        let mut buf = SearchBuffer::new(m, 32);
        let mut all: Vec<(f32, u32)> = Vec::new();
        let mut next_id = 0u32;
        for chunk in &chunks {
            let entries: Vec<BufEntry> = chunk
                .iter()
                .map(|&d| {
                    let e = BufEntry::new(next_id, d);
                    all.push((d, next_id));
                    next_id += 1;
                    e
                })
                .collect();
            buf.set_candidates(entries);
            buf.update_topm();
        }
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let want: Vec<u32> = all.iter().take(m).map(|&(_, id)| id).collect();
        let got: Vec<u32> = buf.topm_ids().collect();
        prop_assert_eq!(got, want);
    }
}
