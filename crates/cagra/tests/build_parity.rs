//! End-to-end bit-parity of the flat parallel construction pipeline.
//!
//! The optimized build (flat arenas, counting scatter, chunk-owned
//! output rows) must produce a `FixedDegreeGraph` that is bit-identical
//! to the retained naive references — serial NN-Descent
//! (`knn::reference_build`) followed by the serial `Vec<Vec<_>>`
//! optimizer (`optimize_naive`) — for 1 and 4 threads, across both
//! reorder strategies and with reverse-edge addition on and off.
//!
//! The dataset is sized so NN-Descent actually iterates: the exact
//! all-pairs shortcut triggers when `n <= 64 * d_init`, so with
//! `d_init = 16` we need (and use) more than 1024 points.

use cagra::optimize::{optimize, optimize_naive, OptimizeOptions};
use cagra::params::ReorderStrategy;
use cagra::{build_graph, GraphConfig};
use dataset::synth::{Family, SynthSpec};
use distance::Metric;
use knn::reference_build;
use knn::{NnDescent, NnDescentParams};

const DEGREE: usize = 8;
const D_INIT: usize = 16;
const N: usize = 1200;

fn base() -> dataset::Dataset {
    SynthSpec { dim: 8, n: N, queries: 0, family: Family::Gaussian, seed: 0x9a11 }.generate().0
}

#[test]
fn nn_descent_matches_serial_reference_at_1_and_4_threads() {
    let base = base();
    let params = NnDescentParams { threads: 1, ..NnDescentParams::new(D_INIT) };
    let want = reference_build(&params, &base, Metric::SquaredL2);
    for threads in [1usize, 4] {
        let p = NnDescentParams { threads, ..params.clone() };
        let got = NnDescent::new(p).build(&base, Metric::SquaredL2);
        assert_eq!(got, want, "NN-Descent diverged from reference at {threads} threads");
    }
}

#[test]
fn full_build_bit_identical_to_naive_for_all_configs() {
    let base = base();
    let params = NnDescentParams { threads: 1, ..NnDescentParams::new(D_INIT) };
    let knn = reference_build(&params, &base, Metric::SquaredL2);
    for strategy in [ReorderStrategy::RankBased, ReorderStrategy::DistanceBased] {
        for reverse in [true, false] {
            let opts = OptimizeOptions { strategy, reverse, ..OptimizeOptions::new(DEGREE) };
            let want = optimize_naive(&knn, &base, Metric::SquaredL2, &opts);
            for threads in [1usize, 4] {
                let got =
                    optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions { threads, ..opts });
                assert_eq!(
                    got.as_flat(),
                    want.as_flat(),
                    "{strategy:?} reverse={reverse} threads={threads}: graph not bit-identical"
                );
            }
        }
    }
}

#[test]
fn build_graph_is_thread_count_invariant() {
    let base = base();
    let mut config = GraphConfig::new(DEGREE);
    config.nn_descent = NnDescentParams::new(D_INIT);
    config.threads = 1;
    let (g1, _) = build_graph(&base, Metric::SquaredL2, &config);
    config.threads = 4;
    let (g4, _) = build_graph(&base, Metric::SquaredL2, &config);
    assert_eq!(g1.as_flat(), g4.as_flat(), "end-to-end build depends on thread count");
}
