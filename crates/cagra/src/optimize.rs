//! CAGRA graph optimization (Sec. III-B2 of the paper).
//!
//! Input: the NN-Descent k-NN lists, each sorted ascending by distance
//! so a neighbor's list position is its **initial rank**. The pipeline
//! is:
//!
//! 1. **Reordering** — for every edge `X -> Y`, count the *detourable
//!    routes*: nodes `Z` with `X -> Z` and `Z -> Y` such that
//!    `max(w(X->Z), w(Z->Y)) < w(X->Y)` (Eq. 3). Rank-based reordering
//!    substitutes list ranks for the weights `w`, eliminating all
//!    distance computation; distance-based recomputes true distances
//!    on the fly (the paper's expensive baseline). Each node list is
//!    then stably reordered by ascending detour count.
//! 2. **Pruning** — keep the first `d` entries of each reordered list.
//! 3. **Reverse edge addition** — build the edge-reversed graph, each
//!    reverse list sorted by the rank the edge had in the pruned graph
//!    ("someone who considers you more important is also more
//!    important to you") and capped at `d`.
//! 4. **Merge** — interleave `d/2` children from the pruned graph and
//!    `d/2` from the reversed graph, backfilling from the pruned graph
//!    when a node has fewer than `d/2` reverse edges.
//!
//! Every step is embarrassingly parallel over nodes, and every step
//! runs that way here, allocation-flat and bit-deterministic for any
//! thread count: reorder+prune writes chunk-owned disjoint rows of one
//! `n × d` buffer, reverse edges are gathered by the deterministic
//! counting scatter from `knn::flat`, and merge writes each node's row
//! straight into the final `FixedDegreeGraph` array. The original
//! serial `Vec<Vec<_>>` implementation is retained as
//! [`optimize_naive`] (plus [`reverse_lists`] / [`merge`]) — it is the
//! reference the `build_parity` test compares against, bit for bit.

use crate::params::ReorderStrategy;
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use graph::FixedDegreeGraph;
use knn::flat::{counting_scatter, CsrRows, KnnLists, ScatterScratch};
use knn::parallel::{default_threads, parallel_fill_rows_with};
use knn::topk::Neighbor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options for [`optimize`].
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Final fixed out-degree `d`.
    pub degree: usize,
    /// Detour criterion for reordering.
    pub strategy: ReorderStrategy,
    /// Apply step 1 (reordering)? Disabled only by the Fig. 3 ablation.
    pub reorder: bool,
    /// Apply steps 3–4 (reverse edges + merge)? Disabled only by the
    /// Fig. 3 ablation.
    pub reverse: bool,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl OptimizeOptions {
    /// The paper's default optimization: rank-based reordering with
    /// reverse edges.
    pub fn new(degree: usize) -> Self {
        OptimizeOptions {
            degree,
            strategy: ReorderStrategy::RankBased,
            reorder: true,
            reverse: true,
            threads: 0,
        }
    }
}

/// Timing and work breakdown of one [`optimize_with_stats`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeStats {
    /// Steps 1–2 (detour counting + prune), or the plain truncation
    /// when reordering is disabled.
    pub reorder_time: Duration,
    /// Step 3 (reverse edge gather + rank sort).
    pub reverse_time: Duration,
    /// Step 4 (interleaved merge into the final graph).
    pub merge_time: Duration,
    /// Distance computations (nonzero only for the distance-based
    /// reordering ablation).
    pub distance_computations: u64,
}

/// Run the optimization pipeline on sorted k-NN lists, producing the
/// fixed-degree CAGRA graph.
///
/// `store`/`metric` are consulted only when
/// `strategy == DistanceBased` (they are what makes that strategy
/// expensive; see Fig. 4).
///
/// # Panics
/// Panics if the lists are shorter than `degree` or contain
/// self/duplicate edges.
pub fn optimize<S: VectorStore + ?Sized>(
    knn: &KnnLists,
    store: &S,
    metric: Metric,
    opts: &OptimizeOptions,
) -> FixedDegreeGraph {
    optimize_with_stats(knn, store, metric, opts).0
}

/// [`optimize`] with a per-stage timing breakdown.
pub fn optimize_with_stats<S: VectorStore + ?Sized>(
    knn: &KnnLists,
    store: &S,
    metric: Metric,
    opts: &OptimizeOptions,
) -> (FixedDegreeGraph, OptimizeStats) {
    let d = opts.degree;
    let n = knn.len();
    assert!(d > 0, "degree must be positive");
    assert!(knn.k() >= d, "every k-NN list must have at least degree={d} entries");
    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    let mut stats = OptimizeStats::default();

    let t = Instant::now();
    let reorder_span = obs::metrics().build_reorder.start();
    let pruned: Vec<u32> = if opts.reorder {
        reorder_and_prune(knn, store, metric, d, opts.strategy, threads, &mut stats)
    } else {
        // Keep the d closest by distance (initial rank order).
        let mut rows = vec![0u32; n * d];
        parallel_fill_rows_with(
            &mut rows,
            n,
            d,
            threads,
            || (),
            |(), x, row| {
                for (slot, nb) in row.iter_mut().zip(knn.row(x)) {
                    *slot = nb.id;
                }
            },
        );
        rows
    };
    stats.reorder_time = t.elapsed();
    drop(reorder_span);

    if !opts.reverse {
        // Pruned rows carry ids straight out of the validated k-NN
        // lists, so the id range re-check is redundant.
        return (FixedDegreeGraph::from_flat_unchecked(pruned, n, d), stats);
    }

    let t = Instant::now();
    let reverse_span = obs::metrics().build_reverse.start();
    let mut scatter = ScatterScratch::new();
    let mut rev: CsrRows<(u32, u32)> = CsrRows::new();
    reverse_flat(&pruned, n, d, threads, &mut scatter, &mut rev);
    stats.reverse_time = t.elapsed();
    drop(reverse_span);

    let t = Instant::now();
    let merge_span = obs::metrics().build_merge.start();
    let graph = merge_flat(&pruned, &rev, n, d, threads);
    stats.merge_time = t.elapsed();
    drop(merge_span);
    (graph, stats)
}

/// Step 1 + 2: detour counting, stable reorder, prune to `d`. Output
/// is one flat `n × d` row-major buffer; workers own disjoint
/// contiguous row chunks (no per-node locks, no per-node allocations).
fn reorder_and_prune<S: VectorStore + ?Sized>(
    knn: &KnnLists,
    store: &S,
    metric: Metric,
    d: usize,
    strategy: ReorderStrategy,
    threads: usize,
    stats: &mut OptimizeStats,
) -> Vec<u32> {
    struct Scratch<'a, S: VectorStore + ?Sized> {
        // Stamped id -> rank map reused across this worker's nodes.
        rank_of: Vec<(u32, u32)>,
        counts: Vec<u32>,
        order: Vec<u32>,
        oracle: DistanceOracle<'a, S>,
        scratch_x: Vec<f32>,
        nb_ids: Vec<u32>,
        w_x: Vec<f32>,
        counted: u64,
    }

    let n = knn.len();
    let dist_count = AtomicU64::new(0);
    let mut pruned = vec![0u32; n * d];
    parallel_fill_rows_with(
        &mut pruned,
        n,
        d,
        threads,
        || Scratch {
            rank_of: vec![(u32::MAX, 0); n],
            counts: Vec::new(),
            order: Vec::new(),
            oracle: DistanceOracle::new(store, metric),
            scratch_x: vec![0.0f32; store.dim()],
            nb_ids: Vec::new(),
            w_x: Vec::new(),
            counted: 0,
        },
        |st, x, out_row| {
            let list = knn.row(x);
            let k = list.len();
            for (r, nb) in list.iter().enumerate() {
                st.rank_of[nb.id as usize] = (x as u32, r as u32);
            }
            st.counts.clear();
            st.counts.resize(k, 0);
            match strategy {
                ReorderStrategy::RankBased => {
                    for (rz, z) in list.iter().enumerate() {
                        for (rzy, y) in knn.row(z.id as usize).iter().enumerate() {
                            let (stamp, ry) = st.rank_of[y.id as usize];
                            if stamp == x as u32 && rz.max(rzy) < ry as usize {
                                st.counts[ry as usize] += 1;
                            }
                        }
                    }
                }
                ReorderStrategy::DistanceBased => {
                    // The paper's costly variant: weights are true
                    // distances recomputed through the oracle
                    // (N * d_init * (d_init - 1) computations overall).
                    // The whole neighbor list is scored with one
                    // batched gang call into a reused buffer.
                    store.get_into(x, &mut st.scratch_x);
                    let prepared = st.oracle.prepare(&st.scratch_x);
                    st.nb_ids.clear();
                    st.nb_ids.extend(list.iter().map(|nb| nb.id));
                    st.w_x.clear();
                    st.w_x.resize(k, 0.0);
                    st.oracle.to_rows(&prepared, &st.nb_ids, &mut st.w_x);
                    for (rz, z) in list.iter().enumerate() {
                        for y in knn.row(z.id as usize).iter() {
                            let (stamp, ry) = st.rank_of[y.id as usize];
                            if stamp == x as u32 {
                                let w_zy = st.oracle.between_rows(z.id as usize, y.id as usize);
                                if st.w_x[rz].max(w_zy) < st.w_x[ry as usize] {
                                    st.counts[ry as usize] += 1;
                                }
                            }
                        }
                    }
                    let now = st.oracle.computed();
                    dist_count.fetch_add(now - st.counted, Ordering::Relaxed);
                    st.counted = now;
                }
            }
            // Stable reorder by ascending detour count; original rank
            // breaks ties, so an untouched list keeps its order.
            st.order.clear();
            st.order.extend(0..k as u32);
            st.order.sort_by_key(|&r| (st.counts[r as usize], r));
            for (slot, &r) in out_row.iter_mut().zip(&st.order[..d]) {
                *slot = list[r as usize].id;
            }
        },
    );
    stats.distance_computations = dist_count.load(Ordering::Relaxed);
    pruned
}

/// Step 3, flat and parallel: gather `(rank, source)` pairs per target
/// with the deterministic counting scatter, then rank-sort each row in
/// parallel. Consumers read at most the first `d` pairs of a row —
/// exactly what the naive [`reverse_lists`] keeps after truncation.
fn reverse_flat(
    pruned: &[u32],
    n: usize,
    d: usize,
    threads: usize,
    scatter: &mut ScatterScratch,
    rev: &mut CsrRows<(u32, u32)>,
) {
    counting_scatter(n, n, threads, scatter, rev, |x| {
        pruned[x * d..(x + 1) * d]
            .iter()
            .enumerate()
            .map(move |(rank, &y)| (y, (rank as u32, x as u32)))
    });
    rev.par_rows_mut(threads, |_, row| row.sort_unstable());
}

/// Step 4, flat and parallel: interleave pruned and reverse children,
/// writing each node's row directly into the final graph's flat array.
/// Takes alternately from each list, skipping duplicates and
/// self-edges, backfilling from the pruned list (which always holds
/// `d` distinct non-self ids).
fn merge_flat(
    pruned: &[u32],
    rev: &CsrRows<(u32, u32)>,
    n: usize,
    d: usize,
    threads: usize,
) -> FixedDegreeGraph {
    let mut flat = vec![0u32; n * d];
    parallel_fill_rows_with(
        &mut flat,
        n,
        d,
        threads,
        // Per-worker stamp array: seen[id] == x marks id as already
        // taken for node x (no clearing between nodes).
        || vec![u32::MAX; n],
        |seen, x, out_row| {
            let p_row = &pruned[x * d..(x + 1) * d];
            let r_full = rev.row(x);
            let r_row = &r_full[..r_full.len().min(d)];
            let mut out_len = 0usize;
            let mut pi = 0usize;
            let mut ri = 0usize;
            let mut take = |id: u32, out_len: &mut usize, out_row: &mut [u32]| {
                if id as usize != x && seen[id as usize] != x as u32 {
                    seen[id as usize] = x as u32;
                    out_row[*out_len] = id;
                    *out_len += 1;
                }
            };
            while out_len < d {
                let want_pruned = out_len.is_multiple_of(2);
                if want_pruned && pi < p_row.len() {
                    take(p_row[pi], &mut out_len, out_row);
                    pi += 1;
                } else if ri < r_row.len() {
                    take(r_row[ri].1, &mut out_len, out_row);
                    ri += 1;
                } else if pi < p_row.len() {
                    take(p_row[pi], &mut out_len, out_row);
                    pi += 1;
                } else {
                    panic!("node {x}: fewer than {d} distinct merge candidates");
                }
            }
        },
    );
    // Every id came from the pruned rows or reverse sources, both of
    // which are valid node ids.
    FixedDegreeGraph::from_flat_unchecked(flat, n, d)
}

/// Serial `Vec<Vec<_>>` reference for the whole pipeline. Same
/// algorithm, same tie-breaking, none of the flat-arena machinery —
/// the `build_parity` test asserts [`optimize`] matches this bit for
/// bit at every thread count.
pub fn optimize_naive<S: VectorStore + ?Sized>(
    knn: &KnnLists,
    store: &S,
    metric: Metric,
    opts: &OptimizeOptions,
) -> FixedDegreeGraph {
    let d = opts.degree;
    assert!(d > 0, "degree must be positive");
    assert!(knn.k() >= d, "every k-NN list must have at least degree={d} entries");
    let n = knn.len();
    let oracle = DistanceOracle::new(store, metric);
    let mut scratch_x = vec![0.0f32; store.dim()];

    let pruned: Vec<Vec<u32>> = if opts.reorder {
        (0..n)
            .map(|x| {
                let list = knn.row(x);
                let k = list.len();
                let counts = match opts.strategy {
                    ReorderStrategy::RankBased => detour_counts_rank_row(|v| knn.row(v), x),
                    ReorderStrategy::DistanceBased => {
                        store.get_into(x, &mut scratch_x);
                        let prepared = oracle.prepare(&scratch_x);
                        let nb_ids: Vec<u32> = list.iter().map(|nb| nb.id).collect();
                        let mut w_x = vec![0.0f32; k];
                        oracle.to_rows(&prepared, &nb_ids, &mut w_x);
                        let rank_idx = rank_index(list);
                        let mut counts = vec![0u32; k];
                        for (rz, z) in list.iter().enumerate() {
                            for y in knn.row(z.id as usize).iter() {
                                if let Some(ry) = rank_in(&rank_idx, y.id) {
                                    let w_zy = oracle.between_rows(z.id as usize, y.id as usize);
                                    if w_x[rz].max(w_zy) < w_x[ry] {
                                        counts[ry] += 1;
                                    }
                                }
                            }
                        }
                        counts
                    }
                };
                let mut order: Vec<u32> = (0..k as u32).collect();
                order.sort_by_key(|&r| (counts[r as usize], r));
                order[..d].iter().map(|&r| list[r as usize].id).collect()
            })
            .collect()
    } else {
        (0..n).map(|x| knn.row(x)[..d].iter().map(|nb| nb.id).collect()).collect()
    };

    if !opts.reverse {
        return rows_to_fixed(&pruned, d);
    }
    let reversed = reverse_lists(&pruned, d);
    merge(&pruned, &reversed, d)
}

/// Step 3, naive serial form: reversed graph, rank-sorted, capped at
/// `d` edges per node.
pub fn reverse_lists(pruned: &[Vec<u32>], d: usize) -> Vec<Vec<u32>> {
    let n = pruned.len();
    // (rank in pruned list, source) pairs per target node.
    let mut rev: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (x, row) in pruned.iter().enumerate() {
        for (rank, &y) in row.iter().enumerate() {
            rev[y as usize].push((rank as u32, x as u32));
        }
    }
    rev.into_iter()
        .map(|mut list| {
            list.sort_unstable();
            list.truncate(d);
            list.into_iter().map(|(_, src)| src).collect()
        })
        .collect()
}

/// Step 4, naive serial form: interleave pruned and reverse children
/// into a final fixed-degree graph.
pub fn merge(pruned: &[Vec<u32>], reversed: &[Vec<u32>], d: usize) -> FixedDegreeGraph {
    let n = pruned.len();
    let mut flat = Vec::with_capacity(n * d);
    let mut seen: Vec<u32> = vec![u32::MAX; n];
    for x in 0..n {
        let mut out_len = 0usize;
        let mut pi = 0usize;
        let mut ri = 0usize;
        let p_row = &pruned[x];
        let r_row = &reversed[x];
        let mut take = |id: u32, flat: &mut Vec<u32>, out_len: &mut usize| {
            if id as usize != x && seen[id as usize] != x as u32 {
                seen[id as usize] = x as u32;
                flat.push(id);
                *out_len += 1;
            }
        };
        while out_len < d {
            let want_pruned = out_len.is_multiple_of(2);
            if want_pruned && pi < p_row.len() {
                take(p_row[pi], &mut flat, &mut out_len);
                pi += 1;
            } else if ri < r_row.len() {
                take(r_row[ri], &mut flat, &mut out_len);
                ri += 1;
            } else if pi < p_row.len() {
                take(p_row[pi], &mut flat, &mut out_len);
                pi += 1;
            } else {
                panic!("node {x}: fewer than {d} distinct merge candidates");
            }
        }
    }
    FixedDegreeGraph::from_flat(flat, n, d)
}

/// Sorted `(id, rank)` lookup table over one neighbor list — the
/// deterministic replacement for a rank `HashMap` (hash containers are
/// banned on the build path; see the determinism lint).
fn rank_index(list: &[Neighbor]) -> Vec<(u32, u32)> {
    let mut idx: Vec<(u32, u32)> =
        list.iter().enumerate().map(|(r, nb)| (nb.id, r as u32)).collect();
    idx.sort_unstable();
    idx
}

/// Rank of `id` in the list `idx` was built from, if present.
fn rank_in(idx: &[(u32, u32)], id: u32) -> Option<usize> {
    idx.binary_search_by_key(&id, |p| p.0).ok().and_then(|i| idx.get(i)).map(|p| p.1 as usize)
}

fn rows_to_fixed(rows: &[Vec<u32>], d: usize) -> FixedDegreeGraph {
    let n = rows.len();
    let mut flat = Vec::with_capacity(n * d);
    for row in rows {
        flat.extend_from_slice(&row[..d]);
    }
    FixedDegreeGraph::from_flat(flat, n, d)
}

/// Detour-count computation exposed for tests and the Fig. 2 example:
/// returns, for each rank position in node `x`'s list, the number of
/// detourable routes under the rank criterion.
pub fn detour_counts_rank(knn: &KnnLists, x: usize) -> Vec<u32> {
    detour_counts_rank_row(|v| knn.row(v), x)
}

fn detour_counts_rank_row<'a, F>(row: F, x: usize) -> Vec<u32>
where
    F: Fn(usize) -> &'a [Neighbor],
{
    let list = row(x);
    let k = list.len();
    let mut counts = vec![0u32; k];
    let rank_idx = rank_index(list);
    for (rz, z) in list.iter().enumerate() {
        for (rzy, y) in row(z.id as usize).iter().enumerate() {
            if let Some(ry) = rank_in(&rank_idx, y.id) {
                if rz.max(rzy) < ry {
                    counts[ry] += 1;
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use dataset::Dataset;
    use knn::nn_descent::exact_all_pairs;

    fn toy_store(n: usize) -> Dataset {
        Dataset::from_flat((0..n).map(|i| i as f32).collect(), 1)
    }

    fn exact_lists(base: &Dataset, k: usize) -> KnnLists {
        KnnLists::from_rows(&exact_all_pairs(base, Metric::SquaredL2, k, 1))
    }

    /// Hand-built 4-node k-NN lists where detour structure is known.
    fn square_lists() -> KnnLists {
        // Points on a line: 0,1,2,3. 2-NN lists (sorted by distance):
        // 0: [1,2]  1: [0,2]  2: [1,3]  3: [2,1]
        KnnLists::from_rows(&[
            vec![Neighbor::new(1, 1.0), Neighbor::new(2, 4.0)],
            vec![Neighbor::new(0, 1.0), Neighbor::new(2, 1.0)],
            vec![Neighbor::new(1, 1.0), Neighbor::new(3, 1.0)],
            vec![Neighbor::new(2, 1.0), Neighbor::new(1, 4.0)],
        ])
    }

    #[test]
    fn detour_counts_match_hand_computation() {
        let knn = square_lists();
        // Node 0: neighbors [1 (rank0), 2 (rank1)].
        // Route 0->1->? : 1's list = [0, 2]; 2 is at rank1 of node 0;
        // max(rank(0->1)=0, rank(1->2)=1) = 1 < 1? No (strict).
        // So edge 0->2 has 0 detours under ranks.
        assert_eq!(detour_counts_rank(&knn, 0), vec![0, 0]);
        // Node 3: neighbors [2 (rank0), 1 (rank1)].
        // Route 3->2->1: rank(3->2)=0, rank(2->1)=0, target rank 1:
        // max(0,0)=0 < 1 -> edge 3->1 has one detour.
        assert_eq!(detour_counts_rank(&knn, 3), vec![0, 1]);
    }

    #[test]
    fn reorder_moves_detourable_edges_back() {
        let knn = square_lists();
        let store = toy_store(4);
        let mut stats = OptimizeStats::default();
        let pruned = reorder_and_prune(
            &knn,
            &store,
            Metric::SquaredL2,
            2,
            ReorderStrategy::RankBased,
            1,
            &mut stats,
        );
        // All counts for node 3 are [0 (edge->2), 1 (edge->1)], so the
        // stable order keeps [2, 1].
        assert_eq!(&pruned[3 * 2..4 * 2], &[2, 1]);
    }

    #[test]
    fn reverse_lists_sorted_by_rank_then_capped() {
        // pruned: 0->[1,2], 1->[2,0], 2->[0,1]
        let pruned = vec![vec![1, 2], vec![2, 0], vec![0, 1]];
        let rev = reverse_lists(&pruned, 2);
        // Node 0 is pointed to by 1 (rank 1) and 2 (rank 0) -> rank
        // order puts 2 first.
        assert_eq!(rev[0], vec![2, 1]);
        // Cap: degree 1 keeps only the best-ranked reverse edge.
        let rev1 = reverse_lists(&pruned, 1);
        assert_eq!(rev1[0], vec![2]);
    }

    #[test]
    fn merge_interleaves_and_dedups() {
        let pruned = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let reversed = vec![vec![2, 1], vec![0, 2], vec![1, 0]];
        let g = merge(&pruned, &reversed, 2);
        // Node 0: take pruned[0]=1, then reversed[0]=2 -> [1, 2].
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.self_loops(), 0);
        for v in 0..3 {
            let mut ids = g.neighbors(v).to_vec();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 2, "node {v} must have distinct neighbors");
        }
    }

    #[test]
    fn merge_backfills_when_reverse_is_short() {
        // Node 2 has no reverse edges at all.
        let pruned = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let reversed = vec![vec![1], vec![0], vec![]];
        let g = merge(&pruned, &reversed, 2);
        assert_eq!(g.neighbors(2), &[0, 1]);
    }

    /// The flat parallel pipeline vs. the retained serial reference:
    /// bit-identical graphs across strategies, ablation flags, and
    /// thread counts.
    #[test]
    fn flat_pipeline_matches_naive_reference_bitwise() {
        let spec = SynthSpec { dim: 6, n: 280, queries: 0, family: Family::Gaussian, seed: 7 };
        let (base, _) = spec.generate();
        let knn = exact_lists(&base, 20);
        for strategy in [ReorderStrategy::RankBased, ReorderStrategy::DistanceBased] {
            for reverse in [true, false] {
                let opts = OptimizeOptions { strategy, reverse, ..OptimizeOptions::new(8) };
                let want = optimize_naive(&knn, &base, Metric::SquaredL2, &opts);
                for threads in [1usize, 4] {
                    let got = optimize(
                        &knn,
                        &base,
                        Metric::SquaredL2,
                        &OptimizeOptions { threads, ..opts },
                    );
                    assert_eq!(
                        got.as_flat(),
                        want.as_flat(),
                        "{strategy:?} reverse={reverse} threads={threads} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_report_per_stage_timing() {
        let spec = SynthSpec { dim: 6, n: 280, queries: 0, family: Family::Gaussian, seed: 7 };
        let (base, _) = spec.generate();
        let knn = exact_lists(&base, 20);
        let opts = OptimizeOptions::new(8);
        let (_, stats) = optimize_with_stats(&knn, &base, Metric::SquaredL2, &opts);
        assert_eq!(stats.distance_computations, 0, "rank-based must not touch the dataset");
        let dist_opts = OptimizeOptions { strategy: ReorderStrategy::DistanceBased, ..opts };
        let (_, dstats) = optimize_with_stats(&knn, &base, Metric::SquaredL2, &dist_opts);
        assert!(dstats.distance_computations > 0);
    }

    #[test]
    fn optimized_graph_invariants_on_synthetic_data() {
        let spec = SynthSpec { dim: 8, n: 300, queries: 0, family: Family::Gaussian, seed: 4 };
        let (base, _) = spec.generate();
        let knn = exact_lists(&base, 24);
        let g = optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions::new(8));
        assert_eq!(g.len(), 300);
        assert_eq!(g.degree(), 8);
        assert_eq!(g.self_loops(), 0);
        for v in 0..g.len() {
            let mut ids = g.neighbors(v).to_vec();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8, "node {v} has duplicate neighbors");
        }
    }

    #[test]
    fn optimization_improves_reachability() {
        use graph::stats::graph_stats;
        use graph::AdjacencyGraph;
        let spec = SynthSpec { dim: 4, n: 500, queries: 0, family: Family::Gaussian, seed: 8 };
        let (base, _) = spec.generate();
        let d = 8;
        let knn = exact_lists(&base, 3 * d);
        // Plain kNN graph truncated to d vs fully optimized CAGRA.
        let plain: Vec<Vec<u32>> =
            (0..knn.len()).map(|v| knn.row(v)[..d].iter().map(|n| n.id).collect()).collect();
        let plain_g = AdjacencyGraph::from_fixed(&rows_to_fixed(&plain, d));
        let opt = optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions::new(d));
        let opt_g = AdjacencyGraph::from_fixed(&opt);
        let s_plain = graph_stats(&plain_g, 1);
        let s_opt = graph_stats(&opt_g, 1);
        // Fig. 3's two claims: fewer strong CCs and a larger 2-hop set.
        assert!(
            s_opt.strong_cc <= s_plain.strong_cc,
            "CC: opt {} vs plain {}",
            s_opt.strong_cc,
            s_plain.strong_cc
        );
        assert!(
            s_opt.avg_two_hop > s_plain.avg_two_hop,
            "2hop: opt {} vs plain {}",
            s_opt.avg_two_hop,
            s_plain.avg_two_hop
        );
    }

    #[test]
    fn distance_based_strategy_builds_a_valid_similar_graph() {
        // Rank-based approximates distance-based (ranks come from each
        // node's own sorted list, so the two criteria are close but not
        // identical). Check the distance-based ablation yields a valid
        // graph sharing most edges with the rank-based one.
        let spec = SynthSpec { dim: 4, n: 250, queries: 0, family: Family::Gaussian, seed: 6 };
        let (base, _) = spec.generate();
        let knn = exact_lists(&base, 16);
        let mut opts = OptimizeOptions::new(8);
        let a = optimize(&knn, &base, Metric::SquaredL2, &opts);
        opts.strategy = ReorderStrategy::DistanceBased;
        let b = optimize(&knn, &base, Metric::SquaredL2, &opts);
        assert_eq!(b.degree(), 8);
        assert_eq!(b.self_loops(), 0);
        let mut shared = 0usize;
        for v in 0..a.len() {
            let bs: std::collections::HashSet<u32> = b.neighbors(v).iter().copied().collect();
            shared += a.neighbors(v).iter().filter(|id| bs.contains(id)).count();
        }
        let frac = shared as f64 / (a.len() * a.degree()) as f64;
        assert!(frac > 0.6, "edge overlap between strategies too low: {frac}");
    }

    #[test]
    #[should_panic(expected = "at least degree")]
    fn short_lists_rejected() {
        let knn = KnnLists::from_rows(&[vec![Neighbor::new(1, 1.0)], vec![Neighbor::new(0, 1.0)]]);
        let store = toy_store(2);
        optimize(&knn, &store, Metric::SquaredL2, &OptimizeOptions::new(2));
    }

    #[test]
    fn ablation_flags_produce_distinct_graphs() {
        let spec = SynthSpec { dim: 4, n: 200, queries: 0, family: Family::Gaussian, seed: 2 };
        let (base, _) = spec.generate();
        let knn = exact_lists(&base, 16);
        let full = optimize(&knn, &base, Metric::SquaredL2, &OptimizeOptions::new(8));
        let no_rev = optimize(
            &knn,
            &base,
            Metric::SquaredL2,
            &OptimizeOptions { reverse: false, ..OptimizeOptions::new(8) },
        );
        let no_reorder = optimize(
            &knn,
            &base,
            Metric::SquaredL2,
            &OptimizeOptions { reorder: false, ..OptimizeOptions::new(8) },
        );
        assert_ne!(full, no_rev);
        assert_ne!(full, no_reorder);
        assert_eq!(no_rev.degree(), 8);
        assert_eq!(no_reorder.degree(), 8);
    }
}
