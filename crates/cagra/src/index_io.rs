//! Single-file index bundles.
//!
//! The paper's deployment story is build-once/search-forever, which
//! needs the graph *and* the vectors it indexes to travel together
//! (they must stay aligned: a graph over a different row order is
//! silently wrong). The bundle format keeps them in one artifact:
//!
//! ```text
//! magic "CGIX" | version u32 | metric u8 | dim u64 | n u64
//! | relabel u8 [ | n * u32 old_of_new ]          (version >= 2)
//! | n * dim f32 vectors | CAGR graph blob
//! ```
//!
//! Version 2 added the locality-relabel section: a strategy tag (0 =
//! not relabeled) followed, when nonzero, by the `old_of_new`
//! permutation that maps internal row positions back to original ids.
//! Version-1 bundles load unchanged as identity-labeled indexes.

use crate::search::index::CagraIndex;
use dataset::{Dataset, VectorStore};
use distance::Metric;
use graph::relabel::{IdMap, Permutation, RelabelStrategy};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CGIX";
const VERSION: u32 = 2;

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::SquaredL2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn tag_metric(t: u8) -> io::Result<Metric> {
    match t {
        0 => Ok(Metric::SquaredL2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad metric tag {other}"))),
    }
}

/// Serialize a full index (vectors + graph + metric) to one stream.
pub fn write_index<W: Write>(mut w: W, index: &CagraIndex<Dataset>) -> io::Result<()> {
    let store = index.store();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[metric_tag(index.metric())])?;
    w.write_all(&(store.dim() as u64).to_le_bytes())?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    match index.id_map() {
        None => w.write_all(&[0u8])?,
        Some(m) => {
            w.write_all(&[m.strategy.tag()])?;
            let mut raw = Vec::with_capacity(m.len() * 4);
            for &old in m.perm.old_of_new_slice() {
                raw.extend_from_slice(&old.to_le_bytes());
            }
            w.write_all(&raw)?;
        }
    }
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in store.as_flat().chunks(16 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    graph::io::write_fixed(w, index.graph())
}

/// Deserialize a bundle written by [`write_index`].
pub fn read_index<R: Read>(mut r: R) -> io::Result<CagraIndex<Dataset>> {
    let mut header = [0u8; 4 + 4 + 1 + 8 + 8];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index magic"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version == 0 || version > VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {version}"),
        ));
    }
    let metric = tag_metric(header[8])?;
    let dim = u64::from_le_bytes(header[9..17].try_into().unwrap()) as usize;
    let n = u64::from_le_bytes(header[17..25].try_into().unwrap()) as usize;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero dimension"));
    }
    // Version 1 predates relabeling: the index is identity-labeled.
    let id_map = if version >= 2 { read_id_map(&mut r, n)? } else { None };
    let total = n
        .checked_mul(dim)
        .and_then(|t| t.checked_mul(4))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "index size overflow"))?;
    let mut body = vec![0u8; total];
    r.read_exact(&mut body)?;
    let flat: Vec<f32> =
        body.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    let store = Dataset::from_flat(flat, dim);
    let g = graph::io::read_fixed(r)?;
    if g.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("graph covers {} nodes but bundle has {n} vectors", g.len()),
        ));
    }
    Ok(CagraIndex::from_parts_mapped(store, g, metric, id_map))
}

/// Read the version-2 relabel section: a strategy tag, then (when the
/// tag is nonzero) the `old_of_new` permutation, validated as a
/// bijection so a corrupt bundle fails here instead of panicking (or
/// silently mis-mapping) at search time.
fn read_id_map<R: Read>(r: &mut R, n: usize) -> io::Result<Option<IdMap>> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let strategy = match tag[0] {
        0 => return Ok(None),
        t => RelabelStrategy::from_tag(t).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad relabel tag {t}"))
        })?,
    };
    let bytes = n
        .checked_mul(4)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "permutation size overflow"))?;
    let mut raw = vec![0u8; bytes];
    r.read_exact(&mut raw)?;
    let old_of_new: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    let mut seen = vec![false; n];
    for &old in &old_of_new {
        if (old as usize) >= n || std::mem::replace(&mut seen[old as usize], true) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("relabel permutation is not a bijection over {n} nodes"),
            ));
        }
    }
    Ok(Some(IdMap { perm: Permutation::from_old_of_new(old_of_new), strategy }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::GraphConfig;
    use crate::params::SearchParams;
    use dataset::synth::{Family, SynthSpec};

    fn build() -> CagraIndex<Dataset> {
        let (base, _) =
            SynthSpec { dim: 12, n: 300, queries: 0, family: Family::Gaussian, seed: 31 }
                .generate();
        CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8)).0
    }

    #[test]
    fn bundle_round_trip_searches_identically() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let back = read_index(&buf[..]).unwrap();
        assert_eq!(back.metric(), Metric::SquaredL2);
        assert_eq!(back.graph(), index.graph());
        let q: Vec<f32> = index.store().row(5).to_vec();
        let p = SearchParams::for_k(5);
        assert_eq!(index.search(&q, 5, &p), back.search(&q, 5, &p));
    }

    #[test]
    fn corrupt_magic_and_version_rejected() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf;
        bad[8] = 7; // invalid metric tag
        assert!(read_index(&bad[..]).is_err());
    }

    #[test]
    fn truncated_bundle_rejected() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_index(&buf[..]).is_err());
    }

    #[test]
    fn relabeled_bundle_round_trips_map_and_results() {
        let mut index = build();
        let q: Vec<f32> = index.store().row(5).to_vec();
        let mut p = SearchParams::for_k(5);
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search(&q, 5, &p);
        index.relabel(crate::RelabelStrategy::Rcm);
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let back = read_index(&buf[..]).unwrap();
        let m = back.id_map().expect("relabeled bundle must carry its map");
        assert_eq!(m.strategy, crate::RelabelStrategy::Rcm);
        assert_eq!(m.perm, index.id_map().unwrap().perm);
        assert_eq!(back.search(&q, 5, &p), baseline);
    }

    #[test]
    fn version_1_bundle_loads_as_identity() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        // Surgically downgrade: version 2 → 1, drop the relabel tag
        // byte that v1 never had (offset 25, right after the header).
        assert_eq!(buf[25], 0, "unrelabeled bundle writes tag 0");
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        buf.remove(25);
        let back = read_index(&buf[..]).unwrap();
        assert!(back.id_map().is_none());
        assert_eq!(back.graph(), index.graph());
        let q: Vec<f32> = index.store().row(7).to_vec();
        let p = SearchParams::for_k(5);
        assert_eq!(back.search(&q, 5, &p), index.search(&q, 5, &p));
    }

    #[test]
    fn corrupt_relabel_section_rejected() {
        let mut index = build();
        index.relabel(crate::RelabelStrategy::Degree);
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let mut bad = buf.clone();
        bad[25] = 9; // unknown strategy tag
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf;
        let dup: [u8; 4] = bad[30..34].try_into().unwrap();
        bad[26..30].copy_from_slice(&dup); // duplicate id
        assert!(read_index(&bad[..]).is_err());
    }

    #[test]
    fn every_metric_round_trips() {
        for m in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let (base, _) =
                SynthSpec { dim: 6, n: 120, queries: 0, family: Family::Gaussian, seed: 2 }
                    .generate();
            let index = CagraIndex::build(base, m, &GraphConfig::new(8)).0;
            let mut buf = Vec::new();
            write_index(&mut buf, &index).unwrap();
            assert_eq!(read_index(&buf[..]).unwrap().metric(), m);
        }
    }
}
