//! Single-file index bundles.
//!
//! The paper's deployment story is build-once/search-forever, which
//! needs the graph *and* the vectors it indexes to travel together
//! (they must stay aligned: a graph over a different row order is
//! silently wrong). The bundle format keeps them in one artifact:
//!
//! ```text
//! magic "CGIX" | version u32 | metric u8 | dim u64 | n u64
//! | relabel u8 [ | n * u32 old_of_new ]          (version >= 2)
//! | storage u8                                   (version >= 3)
//! | storage 0: n * dim f32 vectors | CAGR graph blob
//! | storage 1: codebook blob | n * m codes | CAGR graph blob
//! |            pad u8 | pad zero bytes | n * dim f32 vectors
//! ```
//!
//! Version 2 added the locality-relabel section: a strategy tag (0 =
//! not relabeled) followed, when nonzero, by the `old_of_new`
//! permutation that maps internal row positions back to original ids.
//! Version-1 bundles load unchanged as identity-labeled indexes.
//!
//! Version 3 adds the storage tag. Tag 0 is the plain f32 layout of
//! v2; tag 1 is a product-quantized bundle: the codebook and `n x m`
//! code matrix (internal row order, matching the graph), then the
//! graph, then the **full-precision vectors in original id order**,
//! zero-padded so the f32 region starts on an 8-byte-aligned file
//! offset. [`read_index_pq`] memory-maps that tail region
//! ([`crate::mmap::MmapVectors`]) and attaches it as the index's
//! two-phase rerank source, so a multi-million-point bundle keeps only
//! `m` bytes per vector resident. [`write_index`] still emits v2 —
//! plain f32 bundles stay readable by older loaders.

use crate::mmap::MmapVectors;
use crate::search::index::CagraIndex;
use dataset::pq::{PqCodebook, PqStore};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use graph::relabel::{IdMap, Permutation, RelabelStrategy};
use std::io::{self, BufReader, Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"CGIX";
const VERSION: u32 = 2;
/// First version carrying the storage tag (and thus PQ payloads).
const VERSION_PQ: u32 = 3;
/// Storage tags (v3+).
const STORAGE_F32: u8 = 0;
const STORAGE_PQ: u8 = 1;

fn metric_tag(m: Metric) -> u8 {
    match m {
        Metric::SquaredL2 => 0,
        Metric::InnerProduct => 1,
        Metric::Cosine => 2,
    }
}

fn tag_metric(t: u8) -> io::Result<Metric> {
    match t {
        0 => Ok(Metric::SquaredL2),
        1 => Ok(Metric::InnerProduct),
        2 => Ok(Metric::Cosine),
        other => Err(io::Error::new(io::ErrorKind::InvalidData, format!("bad metric tag {other}"))),
    }
}

/// Shared header + relabel-section writer (everything before the
/// storage-dependent body).
fn write_header<W: Write>(
    w: &mut W,
    version: u32,
    metric: Metric,
    dim: usize,
    n: usize,
    id_map: Option<&IdMap>,
) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&[metric_tag(metric)])?;
    w.write_all(&(dim as u64).to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    match id_map {
        None => w.write_all(&[0u8])?,
        Some(m) => {
            w.write_all(&[m.strategy.tag()])?;
            let mut raw = Vec::with_capacity(m.len() * 4);
            for &old in m.perm.old_of_new_slice() {
                raw.extend_from_slice(&old.to_le_bytes());
            }
            w.write_all(&raw)?;
        }
    }
    Ok(())
}

/// Stream f32 values little-endian in bounded chunks.
fn write_f32s<W: Write>(w: &mut W, flat: &[f32]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(64 * 1024);
    for chunk in flat.chunks(16 * 1024) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Serialize a full index (vectors + graph + metric) to one stream.
pub fn write_index<W: Write>(mut w: W, index: &CagraIndex<Dataset>) -> io::Result<()> {
    let store = index.store();
    write_header(&mut w, VERSION, index.metric(), store.dim(), store.len(), index.id_map())?;
    write_f32s(&mut w, store.as_flat())?;
    graph::io::write_fixed(w, index.graph())
}

/// Serialize a product-quantized index as a v3 bundle: codes + graph
/// up front, then `full`'s f32 rows as the 8-aligned tail region
/// [`read_index_pq`] memory-maps for the two-phase rerank.
///
/// `full` must hold the full-precision vectors in **original** id
/// order (the order before any locality relabel — search results carry
/// original ids, so the rerank source never needs the permutation).
///
/// # Panics
/// Panics if `full`'s shape differs from the index.
pub fn write_index_pq<W: Write>(
    w: W,
    index: &CagraIndex<PqStore>,
    full: &Dataset,
) -> io::Result<()> {
    let store = index.store();
    assert_eq!(full.len(), store.len(), "full-precision rows/index size mismatch");
    assert_eq!(full.dim(), store.dim(), "full-precision rows/index dimension mismatch");
    let mut w = CountWriter { inner: w, pos: 0 };
    write_header(&mut w, VERSION_PQ, index.metric(), store.dim(), store.len(), index.id_map())?;
    w.write_all(&[STORAGE_PQ])?;
    store.codebook().write_to(&mut w)?;
    w.write_all(store.codes())?;
    graph::io::write_fixed(&mut w, index.graph())?;
    // One pad-length byte plus that many zeros lands the f32 region on
    // an 8-aligned offset (mmap hands out 4-aligned f32 rows, and 8
    // keeps the door open for wider payloads).
    let pad = ((8 - (w.pos + 1) % 8) % 8) as u8;
    w.write_all(&[pad])?;
    w.write_all(&[0u8; 8][..pad as usize])?;
    debug_assert_eq!(w.pos % 8, 0);
    write_f32s(&mut w, full.as_flat())
}

/// The fixed-size bundle prologue.
struct Header {
    version: u32,
    metric: Metric,
    dim: usize,
    n: usize,
}

fn read_header<R: Read>(r: &mut R) -> io::Result<Header> {
    let mut header = [0u8; 4 + 4 + 1 + 8 + 8];
    r.read_exact(&mut header)?;
    if &header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad index magic"));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if version == 0 || version > VERSION_PQ {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported index version {version}"),
        ));
    }
    let metric = tag_metric(header[8])?;
    let dim = u64::from_le_bytes(header[9..17].try_into().unwrap()) as usize;
    let n = u64::from_le_bytes(header[17..25].try_into().unwrap()) as usize;
    if dim == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "zero dimension"));
    }
    Ok(Header { version, metric, dim, n })
}

/// Deserialize a bundle written by [`write_index`].
pub fn read_index<R: Read>(mut r: R) -> io::Result<CagraIndex<Dataset>> {
    let Header { version, metric, dim, n } = read_header(&mut r)?;
    // Version 1 predates relabeling: the index is identity-labeled.
    let id_map = if version >= 2 { read_id_map(&mut r, n)? } else { None };
    if version >= VERSION_PQ {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        if tag[0] != STORAGE_F32 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bundle stores product-quantized vectors; load it with read_index_pq",
            ));
        }
    }
    let total = n
        .checked_mul(dim)
        .and_then(|t| t.checked_mul(4))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "index size overflow"))?;
    let mut body = vec![0u8; total];
    r.read_exact(&mut body)?;
    let flat: Vec<f32> =
        body.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    let store = Dataset::from_flat(flat, dim);
    let g = graph::io::read_fixed(r)?;
    if g.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("graph covers {} nodes but bundle has {n} vectors", g.len()),
        ));
    }
    Ok(CagraIndex::from_parts_mapped(store, g, metric, id_map))
}

/// Load a product-quantized v3 bundle from disk. The codebook, codes,
/// and graph are read into memory; the trailing full-precision region
/// is memory-mapped ([`MmapVectors`]) and attached as the index's
/// rerank source, so searches with `rerank_depth > 0` work out of the
/// box while resident memory stays at `m` bytes per vector.
pub fn read_index_pq(path: &Path) -> io::Result<CagraIndex<PqStore>> {
    let file = std::fs::File::open(path)?;
    let mut r = CountReader { inner: BufReader::new(file), pos: 0 };
    let Header { version, metric, dim, n } = read_header(&mut r)?;
    if version < VERSION_PQ {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bundle stores plain f32 vectors; load it with read_index",
        ));
    }
    let id_map = read_id_map(&mut r, n)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    if tag[0] != STORAGE_PQ {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bundle stores plain f32 vectors; load it with read_index",
        ));
    }
    let codebook = PqCodebook::read_from(&mut r)?;
    if codebook.dim() != dim {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("codebook dim {} does not match bundle dim {dim}", codebook.dim()),
        ));
    }
    let code_bytes = n
        .checked_mul(codebook.m())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "code matrix overflow"))?;
    let mut codes = vec![0u8; code_bytes];
    r.read_exact(&mut codes)?;
    let g = graph::io::read_fixed(&mut r)?;
    if g.len() != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("graph covers {} nodes but bundle has {n} vectors", g.len()),
        ));
    }
    let mut pad = [0u8; 1];
    r.read_exact(&mut pad)?;
    if pad[0] >= 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad vector-region padding"));
    }
    let mut padding = [0u8; 8];
    r.read_exact(&mut padding[..pad[0] as usize])?;
    let vec_off = r.pos;
    if vec_off % 8 != 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "misaligned vector region"));
    }
    let store = PqStore::from_parts(Arc::new(codebook), codes, n);
    let vectors = MmapVectors::open(path, vec_off, n, dim)?;
    let mut index = CagraIndex::from_parts_mapped(store, g, metric, id_map);
    index.set_rerank_store(Box::new(vectors));
    Ok(index)
}

/// Write adapter tracking the absolute byte position — lets the PQ
/// writer compute the padding that 8-aligns the f32 region.
struct CountWriter<W> {
    inner: W,
    pos: u64,
}

impl<W: Write> Write for CountWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.pos += written as u64;
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Read adapter tracking the absolute byte position — yields the file
/// offset of the mapped vector region after the sequential prefix.
struct CountReader<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> Read for CountReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let read = self.inner.read(buf)?;
        self.pos += read as u64;
        Ok(read)
    }
}

/// Read the version-2 relabel section: a strategy tag, then (when the
/// tag is nonzero) the `old_of_new` permutation, validated as a
/// bijection so a corrupt bundle fails here instead of panicking (or
/// silently mis-mapping) at search time.
fn read_id_map<R: Read>(r: &mut R, n: usize) -> io::Result<Option<IdMap>> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let strategy = match tag[0] {
        0 => return Ok(None),
        t => RelabelStrategy::from_tag(t).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad relabel tag {t}"))
        })?,
    };
    let bytes = n
        .checked_mul(4)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "permutation size overflow"))?;
    let mut raw = vec![0u8; bytes];
    r.read_exact(&mut raw)?;
    let old_of_new: Vec<u32> =
        raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
    let mut seen = vec![false; n];
    for &old in &old_of_new {
        if (old as usize) >= n || std::mem::replace(&mut seen[old as usize], true) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("relabel permutation is not a bijection over {n} nodes"),
            ));
        }
    }
    Ok(Some(IdMap { perm: Permutation::from_old_of_new(old_of_new), strategy }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::GraphConfig;
    use crate::params::SearchParams;
    use dataset::synth::{Family, SynthSpec};

    fn build() -> CagraIndex<Dataset> {
        let (base, _) =
            SynthSpec { dim: 12, n: 300, queries: 0, family: Family::Gaussian, seed: 31 }
                .generate();
        CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8)).0
    }

    #[test]
    fn bundle_round_trip_searches_identically() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let back = read_index(&buf[..]).unwrap();
        assert_eq!(back.metric(), Metric::SquaredL2);
        assert_eq!(back.graph(), index.graph());
        let q: Vec<f32> = index.store().row(5).to_vec();
        let p = SearchParams::for_k(5);
        assert_eq!(index.search(&q, 5, &p), back.search(&q, 5, &p));
    }

    #[test]
    fn corrupt_magic_and_version_rejected() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf;
        bad[8] = 7; // invalid metric tag
        assert!(read_index(&bad[..]).is_err());
    }

    #[test]
    fn truncated_bundle_rejected() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_index(&buf[..]).is_err());
    }

    #[test]
    fn relabeled_bundle_round_trips_map_and_results() {
        let mut index = build();
        let q: Vec<f32> = index.store().row(5).to_vec();
        let mut p = SearchParams::for_k(5);
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search(&q, 5, &p);
        index.relabel(crate::RelabelStrategy::Rcm);
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let back = read_index(&buf[..]).unwrap();
        let m = back.id_map().expect("relabeled bundle must carry its map");
        assert_eq!(m.strategy, crate::RelabelStrategy::Rcm);
        assert_eq!(m.perm, index.id_map().unwrap().perm);
        assert_eq!(back.search(&q, 5, &p), baseline);
    }

    #[test]
    fn version_1_bundle_loads_as_identity() {
        let index = build();
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        // Surgically downgrade: version 2 → 1, drop the relabel tag
        // byte that v1 never had (offset 25, right after the header).
        assert_eq!(buf[25], 0, "unrelabeled bundle writes tag 0");
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());
        buf.remove(25);
        let back = read_index(&buf[..]).unwrap();
        assert!(back.id_map().is_none());
        assert_eq!(back.graph(), index.graph());
        let q: Vec<f32> = index.store().row(7).to_vec();
        let p = SearchParams::for_k(5);
        assert_eq!(back.search(&q, 5, &p), index.search(&q, 5, &p));
    }

    #[test]
    fn corrupt_relabel_section_rejected() {
        let mut index = build();
        index.relabel(crate::RelabelStrategy::Degree);
        let mut buf = Vec::new();
        write_index(&mut buf, &index).unwrap();
        let mut bad = buf.clone();
        bad[25] = 9; // unknown strategy tag
        assert!(read_index(&bad[..]).is_err());
        let mut bad = buf;
        let dup: [u8; 4] = bad[30..34].try_into().unwrap();
        bad[26..30].copy_from_slice(&dup); // duplicate id
        assert!(read_index(&bad[..]).is_err());
    }

    #[test]
    fn every_metric_round_trips() {
        for m in [Metric::SquaredL2, Metric::InnerProduct, Metric::Cosine] {
            let (base, _) =
                SynthSpec { dim: 6, n: 120, queries: 0, family: Family::Gaussian, seed: 2 }
                    .generate();
            let index = CagraIndex::build(base, m, &GraphConfig::new(8)).0;
            let mut buf = Vec::new();
            write_index(&mut buf, &index).unwrap();
            assert_eq!(read_index(&buf[..]).unwrap().metric(), m);
        }
    }

    fn build_pq() -> (CagraIndex<PqStore>, Dataset, Dataset) {
        use dataset::pq::PqConfig;
        let (base, queries) =
            SynthSpec { dim: 12, n: 400, queries: 10, family: Family::Gaussian, seed: 47 }
                .generate();
        let store = dataset::pq::build(&base, &PqConfig::new(4));
        let (g, _) = crate::build::build_graph(&base, Metric::SquaredL2, &GraphConfig::new(8));
        let mut index = CagraIndex::from_parts(store, g, Metric::SquaredL2);
        index.set_rerank_store(Box::new(Dataset::from_flat(base.as_flat().to_vec(), base.dim())));
        (index, base, queries)
    }

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cagra_bundle_{}_{tag}.cgix", std::process::id()))
    }

    #[test]
    fn pq_bundle_round_trips_with_mapped_rerank() {
        let (index, base, queries) = build_pq();
        let path = tmpfile("pq_rt");
        write_index_pq(std::fs::File::create(&path).unwrap(), &index, &base).unwrap();
        let back = read_index_pq(&path).unwrap();
        assert_eq!(back.metric(), Metric::SquaredL2);
        assert_eq!(back.graph(), index.graph());
        assert_eq!(back.store().codes(), index.store().codes());
        let src = back.rerank_store().expect("loader must attach the rerank source");
        assert_eq!((src.len(), src.dim()), (base.len(), base.dim()));
        let mut p = SearchParams::for_k(5);
        p.rerank_depth = 32;
        // Mapped rows are bit-identical to the heap source: two-phase
        // results must match the in-memory index exactly.
        for qi in 0..queries.len() {
            assert_eq!(
                back.search(queries.row(qi), 5, &p),
                index.search(queries.row(qi), 5, &p),
                "query {qi}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn relabeled_pq_bundle_round_trips() {
        let (mut index, base, queries) = build_pq();
        let mut p = SearchParams::for_k(5);
        p.hash = crate::params::HashPolicy::Standard;
        p.rerank_depth = 32;
        let baseline: Vec<_> =
            (0..queries.len()).map(|qi| index.search(queries.row(qi), 5, &p)).collect();
        index.relabel(crate::RelabelStrategy::Rcm);
        let path = tmpfile("pq_relabel");
        write_index_pq(std::fs::File::create(&path).unwrap(), &index, &base).unwrap();
        let back = read_index_pq(&path).unwrap();
        assert_eq!(
            back.id_map().map(|m| m.strategy),
            Some(crate::RelabelStrategy::Rcm),
            "relabel map must survive the round trip"
        );
        for (qi, want) in baseline.iter().enumerate() {
            assert_eq!(&back.search(queries.row(qi), 5, &p), want, "query {qi}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn readers_reject_each_others_bundles_with_pointers() {
        let (index, base, _) = build_pq();
        let mut pq_bytes = Vec::new();
        write_index_pq(&mut pq_bytes, &index, &base).unwrap();
        let err = read_index(&pq_bytes[..]).err().expect("plain reader must reject PQ bundle");
        assert!(err.to_string().contains("read_index_pq"), "got: {err}");

        let f32_index = build();
        let path = tmpfile("f32_as_pq");
        write_index(std::fs::File::create(&path).unwrap(), &f32_index).unwrap();
        let err = read_index_pq(&path).err().expect("PQ reader must reject f32 bundle");
        assert!(err.to_string().contains("read_index"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_pq_bundle_rejected() {
        let (index, base, _) = build_pq();
        let mut bytes = Vec::new();
        write_index_pq(&mut bytes, &index, &base).unwrap();
        let path = tmpfile("pq_trunc");
        // Cut into the mapped f32 region: the open-time bounds check
        // must fail instead of faulting at rerank time.
        std::fs::write(&path, &bytes[..bytes.len() - 64]).unwrap();
        assert!(read_index_pq(&path).is_err());
        // Cut into the sequential prefix too.
        std::fs::write(&path, &bytes[..200]).unwrap();
        assert!(read_index_pq(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
