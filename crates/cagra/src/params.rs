//! Parameter types shared by construction and search.

use crate::error::SearchError;
use serde::{Deserialize, Serialize};

/// Which detourable-route criterion the edge reordering uses (Sec.
/// III-B2). The paper adopts rank-based; distance-based is kept as the
/// ablation baseline of Figs. 4 and 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReorderStrategy {
    /// Approximate edge weights by each neighbor's position in the
    /// distance-sorted list ("initial rank"). No distance computation.
    RankBased,
    /// Use true distances, recomputed on the fly — the paper's
    /// `N x d_init x (d_init - 1)` extra-computation variant.
    DistanceBased,
}

/// Visited-set management for the search (Sec. IV-B3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HashPolicy {
    /// One table sized for the whole search
    /// (`>= 2 * I_max * p * d` entries), never reset. The paper places
    /// this in device memory; multi-CTA always uses it.
    Standard,
    /// Small table (`2^bits` entries, paper: 2^8..2^13) reset every
    /// `reset_interval` iterations, re-registering only the current
    /// top-M entries afterwards. The paper places this in shared
    /// memory for higher single-CTA occupancy.
    Forgettable {
        /// log2 of the table size.
        bits: u8,
        /// Iterations between resets (paper: typically 1–4).
        reset_interval: u8,
    },
}

/// Search-time parameters (the paper's `M`, `p`, `I_max` and the GPU
/// mapping knobs).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SearchParams {
    /// Internal top-M list length (`itopk`); must be >= k.
    pub itopk: usize,
    /// Number of parents expanded per iteration (`p`); the paper uses
    /// 1 for maximum single-CTA throughput.
    pub search_width: usize,
    /// Hard iteration cap (`I_max`).
    pub max_iterations: usize,
    /// Lower bound on iterations (0 = none); lets experiments force a
    /// fixed amount of traversal.
    pub min_iterations: usize,
    /// Visited-set policy.
    pub hash: HashPolicy,
    /// Threads cooperating on one distance computation in the GPU
    /// model (2, 4, 8, 16 or 32). Purely a `gpu-sim` costing input —
    /// results are identical across team sizes.
    pub team_size: usize,
    /// Number of CTAs per query in multi-CTA mode.
    pub num_cta: usize,
    /// Two-phase rerank depth `r` (0 = off). When nonzero, graph
    /// traversal collects the top `max(k, r)` candidates under the
    /// store's (possibly approximate, e.g. PQ/ADC) distances, then the
    /// index re-scores them against its full-precision rerank source
    /// and returns the exact top `k`. Must be `>= k` when nonzero;
    /// capped by [`SearchParams::MAX_RERANK_DEPTH`]. Effective depth
    /// is additionally clamped to `itopk` (the traversal cannot
    /// surface more than `itopk` candidates).
    pub rerank_depth: usize,
    /// Seed for the random initial candidates.
    pub seed: u64,
}

impl SearchParams {
    /// Paper-flavored defaults for returning `k` results: `itopk = max(64, k)`,
    /// `p = 1`, forgettable hash, auto iteration cap.
    pub fn for_k(k: usize) -> Self {
        let itopk = k.max(64);
        SearchParams {
            itopk,
            search_width: 1,
            max_iterations: 0, // 0 = auto (derived from itopk)
            min_iterations: 0,
            hash: HashPolicy::Forgettable { bits: 11, reset_interval: 1 },
            team_size: 8,
            num_cta: 16,
            rerank_depth: 0,
            seed: 0xcaa7,
        }
    }

    /// The effective iteration cap: explicit `max_iterations`, or the
    /// auto rule (search until every top-M entry has been a parent,
    /// bounded by a generous multiple of itopk) when 0.
    pub fn effective_max_iterations(&self, degree: usize) -> usize {
        if self.max_iterations > 0 {
            return self.max_iterations;
        }
        // Every iteration consumes up to `search_width` parents; the
        // top-M list has itopk entries, and entries churn as closer
        // nodes arrive. 2x headroom matches cuVS' auto rule in spirit.
        let per_iter = self.search_width.max(1);
        (2 * self.itopk).div_ceil(per_iter).max(degree.max(16))
    }

    /// Seed for query `qi` of a batch: a golden-ratio stride from the
    /// base seed decorrelates per-query random initialization while
    /// keeping batch results deterministic regardless of thread count
    /// or scheduling. Exposed so tests (and external callers) can
    /// reproduce exactly what a batch search runs per query.
    pub fn seed_for_query(&self, qi: usize) -> u64 {
        self.seed.wrapping_add((qi as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Largest accepted `itopk` (bounds per-query scratch memory).
    pub const MAX_ITOPK: usize = 1 << 16;
    /// Largest accepted `search_width`.
    pub const MAX_SEARCH_WIDTH: usize = 1 << 10;
    /// Largest accepted `num_cta`.
    pub const MAX_NUM_CTA: usize = 1 << 12;
    /// Largest accepted explicit iteration bound.
    pub const MAX_ITERATION_BOUND: usize = 1 << 24;
    /// Largest accepted rerank depth (bounds the exact-rescore pass;
    /// same ceiling as `itopk`, which already clamps it in practice).
    pub const MAX_RERANK_DEPTH: usize = 1 << 16;

    /// Validate parameter consistency for a result size `k`: rejects
    /// `k == 0`, `k > itopk`, zero/absurd knob values, non-warp team
    /// sizes, and degenerate forgettable-hash configs. Dataset-shape
    /// checks (`k > n`, query dimension) live in the index `try_*`
    /// entry points, which know the dataset.
    pub fn validate(&self, k: usize) -> Result<(), SearchError> {
        if k == 0 {
            return Err(SearchError::ZeroK);
        }
        if self.itopk < k {
            return Err(SearchError::KExceedsItopk { k, itopk: self.itopk });
        }
        if self.itopk > Self::MAX_ITOPK {
            return Err(SearchError::ParamOutOfRange {
                what: "itopk",
                value: self.itopk,
                max: Self::MAX_ITOPK,
            });
        }
        if self.search_width == 0 {
            return Err(SearchError::ZeroSearchWidth);
        }
        if self.search_width > Self::MAX_SEARCH_WIDTH {
            return Err(SearchError::ParamOutOfRange {
                what: "search_width",
                value: self.search_width,
                max: Self::MAX_SEARCH_WIDTH,
            });
        }
        if !matches!(self.team_size, 2 | 4 | 8 | 16 | 32) {
            return Err(SearchError::InvalidTeamSize { team_size: self.team_size });
        }
        if self.num_cta == 0 {
            return Err(SearchError::ZeroNumCta);
        }
        if self.num_cta > Self::MAX_NUM_CTA {
            return Err(SearchError::ParamOutOfRange {
                what: "num_cta",
                value: self.num_cta,
                max: Self::MAX_NUM_CTA,
            });
        }
        for (what, value) in
            [("max_iterations", self.max_iterations), ("min_iterations", self.min_iterations)]
        {
            if value > Self::MAX_ITERATION_BOUND {
                return Err(SearchError::ParamOutOfRange {
                    what,
                    value,
                    max: Self::MAX_ITERATION_BOUND,
                });
            }
        }
        if self.rerank_depth != 0 && self.rerank_depth < k {
            return Err(SearchError::RerankDepthBelowK { depth: self.rerank_depth, k });
        }
        if self.rerank_depth > Self::MAX_RERANK_DEPTH {
            return Err(SearchError::ParamOutOfRange {
                what: "rerank_depth",
                value: self.rerank_depth,
                max: Self::MAX_RERANK_DEPTH,
            });
        }
        if let HashPolicy::Forgettable { bits, reset_interval } = self.hash {
            if !(4..=24).contains(&bits) {
                return Err(SearchError::InvalidHashBits { bits });
            }
            if reset_interval == 0 {
                return Err(SearchError::ZeroResetInterval);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let p = SearchParams::for_k(10);
        assert!(p.validate(10).is_ok());
        assert!(p.itopk >= 10);
    }

    #[test]
    fn itopk_below_k_rejected() {
        let mut p = SearchParams::for_k(10);
        p.itopk = 5;
        assert!(p.validate(10).is_err());
    }

    #[test]
    fn bad_team_size_rejected() {
        let mut p = SearchParams::for_k(1);
        p.team_size = 7;
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn bad_hash_bits_rejected() {
        let mut p = SearchParams::for_k(1);
        p.hash = HashPolicy::Forgettable { bits: 2, reset_interval: 1 };
        assert!(p.validate(1).is_err());
        p.hash = HashPolicy::Forgettable { bits: 11, reset_interval: 0 };
        assert!(p.validate(1).is_err());
    }

    #[test]
    fn zero_k_and_zero_knobs_rejected() {
        let p = SearchParams::for_k(10);
        assert_eq!(p.validate(0), Err(SearchError::ZeroK));
        let mut p = SearchParams::for_k(1);
        p.search_width = 0;
        assert_eq!(p.validate(1), Err(SearchError::ZeroSearchWidth));
        let mut p = SearchParams::for_k(1);
        p.num_cta = 0;
        assert_eq!(p.validate(1), Err(SearchError::ZeroNumCta));
    }

    #[test]
    fn absurd_knob_values_capped() {
        let mut p = SearchParams::for_k(1);
        p.itopk = SearchParams::MAX_ITOPK + 1;
        assert!(matches!(p.validate(1), Err(SearchError::ParamOutOfRange { what: "itopk", .. })));
        let mut p = SearchParams::for_k(1);
        p.search_width = SearchParams::MAX_SEARCH_WIDTH + 1;
        assert!(matches!(
            p.validate(1),
            Err(SearchError::ParamOutOfRange { what: "search_width", .. })
        ));
        let mut p = SearchParams::for_k(1);
        p.num_cta = SearchParams::MAX_NUM_CTA + 1;
        assert!(matches!(p.validate(1), Err(SearchError::ParamOutOfRange { what: "num_cta", .. })));
        let mut p = SearchParams::for_k(1);
        p.max_iterations = SearchParams::MAX_ITERATION_BOUND + 1;
        assert!(matches!(
            p.validate(1),
            Err(SearchError::ParamOutOfRange { what: "max_iterations", .. })
        ));
        let mut p = SearchParams::for_k(1);
        p.min_iterations = SearchParams::MAX_ITERATION_BOUND + 1;
        assert!(matches!(
            p.validate(1),
            Err(SearchError::ParamOutOfRange { what: "min_iterations", .. })
        ));
    }

    #[test]
    fn rerank_depth_validation() {
        let mut p = SearchParams::for_k(10);
        p.rerank_depth = 0; // off — always fine
        assert!(p.validate(10).is_ok());
        p.rerank_depth = 10; // == k is the floor
        assert!(p.validate(10).is_ok());
        p.rerank_depth = 9;
        assert_eq!(p.validate(10), Err(SearchError::RerankDepthBelowK { depth: 9, k: 10 }));
        p.rerank_depth = SearchParams::MAX_RERANK_DEPTH + 1;
        assert!(matches!(
            p.validate(10),
            Err(SearchError::ParamOutOfRange { what: "rerank_depth", .. })
        ));
    }

    #[test]
    fn auto_iteration_cap_scales_with_itopk() {
        let mut p = SearchParams::for_k(10);
        p.itopk = 64;
        let small = p.effective_max_iterations(32);
        p.itopk = 512;
        assert!(p.effective_max_iterations(32) > small);
        p.max_iterations = 7;
        assert_eq!(p.effective_max_iterations(32), 7);
    }
}
