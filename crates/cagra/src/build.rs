//! End-to-end CAGRA graph construction (Fig. 1 of the paper): the
//! NN-Descent initial `d_init`-NN graph followed by the optimization
//! pipeline, with the per-stage timing breakdown the paper reports in
//! Fig. 11.

use crate::optimize::{optimize_with_stats, OptimizeOptions};
use crate::params::ReorderStrategy;
use dataset::VectorStore;
use distance::Metric;
use graph::FixedDegreeGraph;
use knn::{NnDescent, NnDescentParams};
use std::time::{Duration, Instant};

/// Construction parameters.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Final fixed out-degree `d`.
    pub degree: usize,
    /// Initial k-NN graph degree `d_init`; the paper uses `2d` or `3d`.
    /// 0 selects the default `2d`.
    pub intermediate_degree: usize,
    /// Reordering strategy (rank-based is the contribution).
    pub strategy: ReorderStrategy,
    /// NN-Descent tuning; `k` is overwritten with `intermediate_degree`.
    pub nn_descent: NnDescentParams,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl GraphConfig {
    /// Paper defaults for a target degree.
    pub fn new(degree: usize) -> Self {
        GraphConfig {
            degree,
            intermediate_degree: 0,
            strategy: ReorderStrategy::RankBased,
            nn_descent: NnDescentParams::new(degree * 2),
            threads: 0,
        }
    }

    /// Resolved `d_init`.
    pub fn d_init(&self) -> usize {
        if self.intermediate_degree == 0 {
            self.degree * 2
        } else {
            self.intermediate_degree
        }
    }
}

/// Timing breakdown of a build, matching the stacked bars of Fig. 11.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildReport {
    /// Time spent building the initial k-NN graph (NN-Descent).
    pub knn_time: Duration,
    /// Time spent in the optimization pipeline.
    pub opt_time: Duration,
    /// Distance computations NN-Descent performed (input to the
    /// GPU construction-time estimate).
    pub nn_distance_computations: u64,
    /// Per-stage breakdown of the two coarse times above.
    pub stats: BuildStats,
}

impl BuildReport {
    /// Total construction time.
    pub fn total(&self) -> Duration {
        self.knn_time + self.opt_time
    }
}

/// Fine-grained per-stage timing of one build: where `knn_time` and
/// `opt_time` actually go. Surfaced by the CLI `build` command and the
/// Fig. 4/11 experiment drivers.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// NN-Descent random initialization (or the exact-all-pairs
    /// shortcut on tiny datasets).
    pub nn_init: Duration,
    /// NN-Descent descent iterations (sampling + scatter + joins).
    pub nn_iters: Duration,
    /// Descent iterations executed (0 when the exact path was taken).
    pub nn_iterations: u32,
    /// Detour-count reordering + prune.
    pub reorder: Duration,
    /// Reverse edge gather + rank sort.
    pub reverse: Duration,
    /// Interleaved merge into the final graph.
    pub merge: Duration,
    /// Locality relabeling (permutation compute + joint graph/store
    /// application); zero unless the build requested a relabel.
    pub relabel: Duration,
    /// Distance computations performed by the optimizer (nonzero only
    /// for the distance-based reordering ablation).
    pub opt_distance_computations: u64,
}

/// Build a CAGRA graph over `store`.
///
/// # Panics
/// Panics if the dataset is too small for the requested degree
/// (`n - 1 < d_init` leaves NN-Descent unable to fill the lists the
/// optimizer needs).
pub fn build_graph<S: VectorStore + ?Sized>(
    store: &S,
    metric: Metric,
    config: &GraphConfig,
) -> (FixedDegreeGraph, BuildReport) {
    let n = store.len();
    let d = config.degree;
    let d_init = config.d_init();
    assert!(d > 0, "degree must be positive");
    assert!(d_init >= d, "d_init ({d_init}) must be >= degree ({d})");
    assert!(
        n > d_init,
        "dataset of {n} vectors cannot support d_init = {d_init} (need n > d_init)"
    );

    let t0 = Instant::now();
    let mut nd_params = config.nn_descent.clone();
    nd_params.k = d_init;
    nd_params.threads = config.threads;
    let (knn, nn_stats) = NnDescent::new(nd_params).build_with_stats(store, metric);
    let knn_time = t0.elapsed();

    let t1 = Instant::now();
    let opts = OptimizeOptions {
        degree: d,
        strategy: config.strategy,
        reorder: true,
        reverse: true,
        threads: config.threads,
    };
    let (g, opt_stats) = optimize_with_stats(&knn, store, metric, &opts);
    let opt_time = t1.elapsed();

    let m = obs::metrics();
    m.build_graphs.inc();
    m.build_opt_distances.add(opt_stats.distance_computations);

    (
        g,
        BuildReport {
            knn_time,
            opt_time,
            nn_distance_computations: nn_stats.distance_computations,
            stats: BuildStats {
                nn_init: nn_stats.init_time,
                nn_iters: nn_stats.iter_time,
                nn_iterations: nn_stats.iterations,
                reorder: opt_stats.reorder_time,
                reverse: opt_stats.reverse_time,
                merge: opt_stats.merge_time,
                relabel: Duration::ZERO,
                opt_distance_computations: opt_stats.distance_computations,
            },
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};

    #[test]
    fn builds_a_valid_graph_end_to_end() {
        let spec = SynthSpec { dim: 8, n: 400, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let (g, report) = build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
        assert_eq!(g.len(), 400);
        assert_eq!(g.degree(), 16);
        assert_eq!(g.self_loops(), 0);
        assert!(report.total() >= report.knn_time);
    }

    #[test]
    fn d_init_defaults_to_twice_degree() {
        let c = GraphConfig::new(32);
        assert_eq!(c.d_init(), 64);
        let c2 = GraphConfig { intermediate_degree: 96, ..GraphConfig::new(32) };
        assert_eq!(c2.d_init(), 96);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn tiny_dataset_rejected() {
        let spec = SynthSpec { dim: 4, n: 20, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
    }

    #[test]
    #[should_panic(expected = "must be >= degree")]
    fn d_init_below_degree_rejected() {
        let spec = SynthSpec { dim: 4, n: 100, queries: 0, family: Family::Gaussian, seed: 1 };
        let (base, _) = spec.generate();
        let c = GraphConfig { intermediate_degree: 8, ..GraphConfig::new(16) };
        build_graph(&base, Metric::SquaredL2, &c);
    }
}
