//! Typed errors for the fallible public search API.
//!
//! Every user-input failure the search layer can detect is an explicit
//! [`SearchError`] variant: the `try_*` entry points return them, and
//! the legacy infallible wrappers panic with the same `Display` text
//! (so existing `should_panic` expectations — "dimension mismatch",
//! "size mismatch" — keep matching).

use crate::params::SearchParams;
use std::fmt;

/// Why a search (or index construction) request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchError {
    /// Query vector length differs from the index dimensionality.
    DimMismatch {
        /// Index (store) dimensionality.
        expected: usize,
        /// Offending query dimensionality.
        got: usize,
    },
    /// Store and graph disagree on the number of points.
    SizeMismatch {
        /// Vectors in the store.
        store: usize,
        /// Nodes in the graph.
        graph: usize,
    },
    /// `k == 0` — an empty result set is never meaningful.
    ZeroK,
    /// `k` exceeds the internal top-M list, so `k` results can never
    /// be produced.
    KExceedsItopk { k: usize, itopk: usize },
    /// `k` exceeds the dataset size (includes searching an empty index).
    KExceedsDataset { k: usize, n: usize },
    /// `team_size` is not one of the warp-dividing values 2/4/8/16/32.
    InvalidTeamSize { team_size: usize },
    /// `search_width == 0` — no parents would ever be expanded.
    ZeroSearchWidth,
    /// `num_cta == 0` — no workers in multi-CTA mode.
    ZeroNumCta,
    /// Forgettable hash table size outside the supported `4..=24` bits.
    InvalidHashBits { bits: u8 },
    /// Forgettable `reset_interval == 0` — the reset cadence is a
    /// modulus, so zero is nonsensical.
    ZeroResetInterval,
    /// `rerank_depth` is nonzero but below `k` — the exact-rescore
    /// pass could not produce `k` results.
    RerankDepthBelowK { depth: usize, k: usize },
    /// `rerank_depth > 0` but the index has no full-precision rerank
    /// source attached, so exact re-scoring is impossible.
    RerankWithoutSource,
    /// A parameter exceeds the sanity cap noted in `what` (guards
    /// against absurd allocations from untrusted configs).
    ParamOutOfRange {
        /// Which parameter, e.g. `"itopk"`.
        what: &'static str,
        /// The offending value.
        value: usize,
        /// Largest accepted value.
        max: usize,
    },
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SearchError::DimMismatch { expected, got } => {
                write!(f, "query dimension mismatch: index dim {expected}, query dim {got}")
            }
            SearchError::SizeMismatch { store, graph } => {
                write!(f, "graph/store size mismatch: {store} vectors vs {graph} nodes")
            }
            SearchError::ZeroK => write!(f, "k must be positive"),
            SearchError::KExceedsItopk { k, itopk } => {
                write!(f, "itopk ({itopk}) must be >= k ({k})")
            }
            SearchError::KExceedsDataset { k, n } => {
                write!(f, "k ({k}) exceeds dataset size ({n})")
            }
            SearchError::InvalidTeamSize { team_size } => {
                write!(f, "team_size {team_size} must divide a 32-thread warp")
            }
            SearchError::ZeroSearchWidth => write!(f, "search_width must be positive"),
            SearchError::ZeroNumCta => write!(f, "num_cta must be positive"),
            SearchError::InvalidHashBits { bits } => {
                write!(f, "forgettable hash bits {bits} out of range 4..=24")
            }
            SearchError::ZeroResetInterval => write!(f, "reset_interval must be positive"),
            SearchError::RerankDepthBelowK { depth, k } => {
                write!(f, "rerank_depth ({depth}) must be >= k ({k}) when nonzero")
            }
            SearchError::RerankWithoutSource => {
                write!(f, "rerank_depth > 0 requires a full-precision rerank source on the index")
            }
            SearchError::ParamOutOfRange { what, value, max } => {
                write!(f, "{what} ({value}) exceeds the supported maximum ({max})")
            }
        }
    }
}

impl std::error::Error for SearchError {}

/// Validate `params` against a query of dimension `query_dim` on an
/// index of `n` points and dimension `index_dim`, returning `k`'s
/// feasibility too — the shared gate all `try_*` entry points run.
pub(crate) fn validate_request(
    params: &SearchParams,
    k: usize,
    n: usize,
    index_dim: usize,
    query_dim: usize,
) -> Result<(), SearchError> {
    if query_dim != index_dim {
        return Err(SearchError::DimMismatch { expected: index_dim, got: query_dim });
    }
    params.validate(k)?;
    if k > n {
        return Err(SearchError::KExceedsDataset { k, n });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_substrings() {
        // Pre-existing `should_panic(expected = ...)` tests (here and
        // downstream) match on these fragments.
        assert!(SearchError::DimMismatch { expected: 8, got: 4 }
            .to_string()
            .contains("dimension mismatch"));
        assert!(SearchError::SizeMismatch { store: 1, graph: 2 }
            .to_string()
            .contains("size mismatch"));
        assert!(SearchError::InvalidHashBits { bits: 30 }.to_string().contains("out of range"));
    }

    #[test]
    fn validate_request_order_of_checks() {
        let p = SearchParams::for_k(10);
        // Dim mismatch wins over everything.
        assert_eq!(
            validate_request(&p, 10, 100, 8, 4),
            Err(SearchError::DimMismatch { expected: 8, got: 4 })
        );
        // Then parameter validity.
        assert_eq!(validate_request(&p, 0, 100, 8, 8), Err(SearchError::ZeroK));
        // Then dataset feasibility.
        assert_eq!(
            validate_request(&p, 10, 5, 8, 8),
            Err(SearchError::KExceedsDataset { k: 10, n: 5 })
        );
        assert_eq!(validate_request(&p, 10, 100, 8, 8), Ok(()));
    }
}
