//! Multi-GPU sharding (Sec. IV-C2 and Q-C5 of the paper).
//!
//! For datasets larger than one device's memory the paper recommends
//! "a simple multi-GPU sharding technique ... where each GPU is
//! assigned to process one sub-graph independently". This module
//! implements it: the dataset is split into contiguous shards, an
//! independent CAGRA graph is built per shard (exactly the
//! GGNN-style independent sub-graph construction the paper describes),
//! every query searches all shards, and the per-shard top-k lists are
//! merged. Shard-local node ids are translated back to global ids.

use crate::build::{BuildReport, GraphConfig};
use crate::mmap::MmapVectors;
use crate::params::SearchParams;
use crate::search::index::CagraIndex;
use crate::search::planner::Mode;
use dataset::pq::{PqCodebook, PqConfig, PqStore};
use dataset::{Dataset, VectorStore};
use distance::Metric;
use knn::topk::{cmp_neighbor, Neighbor};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

/// A collection of independent per-shard CAGRA indexes. The shard
/// store type is generic: `Dataset` (f32, the default) for in-memory
/// shards, `PqStore` for compressed shards built by
/// [`ShardedIndex::build_pq`].
pub struct ShardedIndex<S = Dataset> {
    shards: Vec<CagraIndex<S>>,
    /// Global id of each shard's first vector.
    offsets: Vec<u32>,
    metric: Metric,
}

/// Gather shard rows `[start, end)` of any store into an f32 dataset.
fn gather_shard<S: VectorStore>(store: &S, start: usize, end: usize) -> Dataset {
    let dim = store.dim();
    let mut row = vec![0.0f32; dim];
    let mut flat = Vec::with_capacity((end - start) * dim);
    for i in start..end {
        store.get_into(i, &mut row);
        flat.extend_from_slice(&row);
    }
    Dataset::from_flat(flat, dim)
}

/// Validate the shard count and return the shard length.
fn shard_len_for(n: usize, num_shards: usize, config: &GraphConfig) -> usize {
    assert!(num_shards > 0, "need at least one shard");
    let shard_len = n.div_ceil(num_shards);
    assert!(
        shard_len > config.d_init(),
        "shards of {shard_len} vectors cannot support d_init = {}",
        config.d_init()
    );
    shard_len
}

impl ShardedIndex<Dataset> {
    /// Split `store` into `num_shards` contiguous shards and build one
    /// CAGRA graph per shard. Returns the index and the per-shard
    /// build reports.
    ///
    /// # Panics
    /// Panics if a shard would be too small for the configured degree
    /// (`shard_len <= d_init`).
    pub fn build<S: VectorStore>(
        store: &S,
        metric: Metric,
        config: &GraphConfig,
        num_shards: usize,
    ) -> (Self, Vec<BuildReport>) {
        let n = store.len();
        let shard_len = shard_len_for(n, num_shards, config);
        let mut shards = Vec::with_capacity(num_shards);
        let mut offsets = Vec::with_capacity(num_shards);
        let mut reports = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        while start < n {
            let end = (start + shard_len).min(n);
            let shard_store = gather_shard(store, start, end);
            let (index, report) = CagraIndex::build(shard_store, metric, config);
            shards.push(index);
            offsets.push(start as u32);
            reports.push(report);
            start = end;
        }
        (ShardedIndex { shards, offsets, metric }, reports)
    }
}

impl ShardedIndex<PqStore> {
    /// Build a sharded **product-quantized** index — the multi-million
    /// point configuration: one *global* codebook is trained on a
    /// deterministic sample of the whole store, then each shard builds
    /// its graph on transient f32 rows, encodes them to `m`-byte PQ
    /// codes, and spills the f32 rows to
    /// `spill_dir/shard_NNNN.f32` — memory-mapped back as the shard's
    /// two-phase rerank source ([`MmapVectors`]). Steady-state
    /// residency is `m` bytes per vector plus the graph; the peak is
    /// one shard of f32 during its build.
    ///
    /// A single codebook across shards keeps every shard's distances
    /// in the same quantized space, so the merged top-k is consistent,
    /// and the codebook is stored once.
    ///
    /// # Panics
    /// Panics if a shard would be too small for the configured degree.
    pub fn build_pq<S: VectorStore>(
        store: &S,
        metric: Metric,
        config: &GraphConfig,
        num_shards: usize,
        pq: &PqConfig,
        spill_dir: &Path,
    ) -> io::Result<(Self, Vec<BuildReport>)> {
        let n = store.len();
        let shard_len = shard_len_for(n, num_shards, config);
        std::fs::create_dir_all(spill_dir)?;
        let codebook = Arc::new(PqCodebook::train(store, pq));
        let mut shards = Vec::with_capacity(num_shards);
        let mut offsets = Vec::with_capacity(num_shards);
        let mut reports = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        while start < n {
            let end = (start + shard_len).min(n);
            let full = gather_shard(store, start, end);
            // Graph quality comes from exact f32 distances; the PQ
            // store only serves search-time traversal.
            let (graph, report) = crate::build::build_graph(&full, metric, config);
            let pq_store = PqStore::encode(Arc::clone(&codebook), &full);
            let path = spill_dir.join(format!("shard_{:04}.f32", shards.len()));
            let mut w = io::BufWriter::new(std::fs::File::create(&path)?);
            for chunk in full.as_flat() {
                w.write_all(&chunk.to_le_bytes())?;
            }
            w.flush()?;
            drop(w);
            drop(full);
            let vectors = MmapVectors::open(&path, 0, end - start, store.dim())?;
            let mut index = CagraIndex::from_parts(pq_store, graph, metric);
            index.set_rerank_store(Box::new(vectors));
            shards.push(index);
            offsets.push(start as u32);
            reports.push(report);
            start = end;
        }
        Ok((ShardedIndex { shards, offsets, metric }, reports))
    }

    /// The codebook shared by every shard.
    pub fn codebook(&self) -> &Arc<PqCodebook> {
        self.shards[0].store().codebook()
    }
}

impl<S: VectorStore> ShardedIndex<S> {
    /// Number of shards (devices in the paper's deployment).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.store().len()).sum()
    }

    /// True when the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metric shared by every shard.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Resident bytes per vector across shard stores (PQ shards
    /// report `m`; the mmap'd rerank rows are file-backed and count
    /// zero).
    pub fn bytes_per_vector(&self) -> usize {
        self.shards.first().map_or(0, |s| {
            s.store().bytes_per_vector() + s.rerank_store().map_or(0, |r| r.bytes_per_vector())
        })
    }

    /// Borrow one shard's index (e.g. to route it to a device model).
    pub fn shard(&self, i: usize) -> &CagraIndex<S> {
        &self.shards[i]
    }

    /// Search all shards and merge the global top-k. Each shard uses
    /// the given mapping; on real hardware the shards run on separate
    /// GPUs concurrently, so the latency is the slowest shard, not the
    /// sum (the `gpu-sim` multi-device helper accounts for that).
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = Vec::with_capacity(k * self.shards.len());
        for (shard, &offset) in self.shards.iter().zip(&self.offsets) {
            let (results, _) = shard.search_mode(query, k, params, mode);
            all.extend(results.into_iter().map(|n| Neighbor::new(n.id + offset, n.dist)));
        }
        all.sort_unstable_by(cmp_neighbor);
        all.truncate(k);
        all
    }

    /// Search all shards, returning per-shard traces for multi-device
    /// timing simulation alongside the merged results.
    pub fn search_traced(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> (Vec<Neighbor>, Vec<crate::search::trace::SearchTrace>) {
        let mut all: Vec<Neighbor> = Vec::with_capacity(k * self.shards.len());
        let mut traces = Vec::with_capacity(self.shards.len());
        for (shard, &offset) in self.shards.iter().zip(&self.offsets) {
            let (results, trace) = shard.search_mode(query, k, params, mode);
            all.extend(results.into_iter().map(|n| Neighbor::new(n.id + offset, n.dist)));
            traces.push(trace);
        }
        all.sort_unstable_by(cmp_neighbor);
        all.truncate(k);
        (all, traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::exact_search;

    fn workload() -> (Dataset, Dataset) {
        SynthSpec { dim: 8, n: 2400, queries: 25, family: Family::Gaussian, seed: 77 }.generate()
    }

    #[test]
    fn sharded_search_merges_global_ids() {
        let (base, queries) = workload();
        let (sharded, reports) =
            ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(8), 3);
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.len(), 2400);
        assert_eq!(reports.len(), 3);

        let params = SearchParams::for_k(10);
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let got = sharded.search(queries.row(qi), 10, &params, Mode::SingleCta);
            assert_eq!(got.len(), 10);
            assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
            assert!(got.iter().all(|n| (n.id as usize) < 2400), "global id out of range");
            let want = exact_search(&base, Metric::SquaredL2, queries.row(qi), 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.9, "sharded recall@10 = {recall}");
    }

    #[test]
    fn single_shard_matches_unsharded_results() {
        let (base, queries) = workload();
        let (sharded, _) = ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(8), 1);
        let (index, _) = CagraIndex::build(
            Dataset::from_flat(base.as_flat().to_vec(), base.dim()),
            Metric::SquaredL2,
            &GraphConfig::new(8),
        );
        let params = SearchParams::for_k(5);
        let a = sharded.search(queries.row(0), 5, &params, Mode::SingleCta);
        let (b, _) = index.search_mode(queries.row(0), 5, &params, Mode::SingleCta);
        assert_eq!(a, b);
    }

    #[test]
    fn shard_distances_are_true_global_distances() {
        // Merging is only correct if per-shard distances are computed
        // in the same space; verify against the oracle.
        let (base, queries) = workload();
        let (sharded, _) = ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(8), 4);
        let got = sharded.search(queries.row(1), 5, &SearchParams::for_k(5), Mode::SingleCta);
        for n in got {
            let d = distance::Metric::SquaredL2.distance(queries.row(1), base.row(n.id as usize));
            assert!((d - n.dist).abs() < 1e-4, "id {} dist {} vs true {d}", n.id, n.dist);
        }
    }

    #[test]
    fn traced_search_returns_one_trace_per_shard() {
        let (base, queries) = workload();
        let (sharded, _) = ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(8), 3);
        let (_, traces) =
            sharded.search_traced(queries.row(0), 5, &SearchParams::for_k(5), Mode::SingleCta);
        assert_eq!(traces.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn too_many_shards_rejected() {
        let (base, _) = workload();
        let _ = ShardedIndex::build(&base, Metric::SquaredL2, &GraphConfig::new(32), 64);
    }

    #[test]
    fn pq_shards_share_one_codebook_and_rerank_to_high_recall() {
        let (base, queries) = workload();
        let dir = std::env::temp_dir().join(format!("cagra_shard_pq_{}", std::process::id()));
        let (sharded, reports) = ShardedIndex::build_pq(
            &base,
            Metric::SquaredL2,
            &GraphConfig::new(8),
            3,
            &dataset::pq::PqConfig::new(4),
            &dir,
        )
        .unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.len(), 2400);
        assert_eq!(reports.len(), 3);
        // One codebook instance across shards.
        assert!(Arc::ptr_eq(
            sharded.shard(0).store().codebook(),
            sharded.shard(2).store().codebook()
        ));
        // Residency: m bytes per vector (+0 for the mapped rerank rows
        // on unix) — far below the 32 f32 bytes.
        assert!(
            sharded.bytes_per_vector() * 4 <= base.bytes_per_vector(),
            "PQ shards resident {} B/vec vs f32 {} B/vec",
            sharded.bytes_per_vector(),
            base.bytes_per_vector()
        );
        let mut params = SearchParams::for_k(10);
        params.itopk = 128;
        params.rerank_depth = 64;
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let got = sharded.search(queries.row(qi), 10, &params, Mode::SingleCta);
            assert_eq!(got.len(), 10);
            // Reranked distances are exact f32 distances in global ids.
            for n in &got {
                let d = Metric::SquaredL2.distance(queries.row(qi), base.row(n.id as usize));
                assert_eq!(n.dist, d, "query {qi} id {}", n.id);
            }
            let want = exact_search(&base, Metric::SquaredL2, queries.row(qi), 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.9, "sharded PQ+rerank recall@10 = {recall}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
