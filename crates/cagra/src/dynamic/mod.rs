//! `cagra::dynamic` — a mutable index over the immutable CAGRA graph
//! (ROADMAP item 2, ISSUE 10 tentpole).
//!
//! CAGRA's fixed-degree graph is build-once: there is no incremental
//! insert, and the paper's answer to churn is "rebuild". This module
//! makes that answer *online*. A [`DynamicIndex`] wraps everything
//! behind an epoch-stamped snapshot pointer ([`EpochPtr`]):
//!
//! * **Readers** clone the current [`Snapshot`] and search it with no
//!   locks held — a snapshot is immutable, so searches race nothing.
//! * **Inserts** route into a small copy-on-write delta segment
//!   ([`delta::DeltaSeg`]): brute-force gang-scored while small,
//!   NSW-linked once it grows. Each mutation publishes a fresh
//!   snapshot and bumps the epoch.
//! * **Deletes** are tombstones: a `BTreeSet` of external ids masked
//!   out when main and delta results merge at the top-k boundary
//!   (searches over-fetch by the tombstone count so masking cannot
//!   starve `k`).
//! * **Compaction** (a background thread, or [`DynamicIndex::compact_now`])
//!   rebuilds delta + live main rows — minus tombstones — into a
//!   fresh [`CagraIndex`] *off the writer lock*, then splices: rows
//!   inserted during the rebuild survive as the new delta (the delta
//!   is append-only, so the pre-rebuild prefix is exact), tombstones
//!   added during the rebuild are retained, and the swap is one
//!   epoch publish concurrent with readers.
//!
//! External ids are `u32`, assigned once, never reused. Every mutation
//! and compaction records into the `dyn.*` observability group (delta
//! size, tombstone ratio, compaction wall time, epoch swaps).

pub mod delta;
pub mod epoch;

#[cfg(all(loom, test))]
mod loom_model;

use crate::build::GraphConfig;
use crate::error::SearchError;
use crate::params::SearchParams;
use crate::search::index::CagraIndex;
use crate::search::planner::Mode;
use crate::search::scratch::SearchScratch;
use dataset::{Dataset, VectorStore};
use delta::{DeltaConfig, DeltaSeg};
use distance::Metric;
pub use epoch::EpochPtr;
use knn::parallel::{default_threads, parallel_map};
use knn::topk::{cmp_neighbor, Neighbor};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs for a [`DynamicIndex`].
#[derive(Clone, Debug)]
pub struct DynamicParams {
    /// Build configuration for compacted main segments.
    pub graph: GraphConfig,
    /// Search parameters for the main-segment traversal. `itopk` is
    /// raised per query as the tombstone over-fetch requires; `k`
    /// stays per-request.
    pub search: SearchParams,
    /// Delta size that triggers a compaction.
    pub max_delta: usize,
    /// Tombstone ratio (deleted / total rows) that triggers a
    /// compaction.
    pub max_tombstone_ratio: f64,
    /// Delta size at which inserts start maintaining NSW links
    /// (below: brute-force scans, which win at small sizes).
    pub nsw_threshold: usize,
    /// NSW links per inserted delta row.
    pub nsw_degree: usize,
    /// NSW beam width (`ef`) for delta searches and insertions; the
    /// effective search beam also scales with delta size, so this is a
    /// floor, not a cap.
    pub nsw_ef: usize,
    /// Smallest live count worth a graph build; below it compaction
    /// folds everything into a (brute/NSW) delta and no main segment
    /// exists.
    pub min_main: usize,
    /// Run the background compaction thread. Off: compaction happens
    /// only via [`DynamicIndex::compact_now`] (deterministic tests).
    pub auto_compact: bool,
}

impl DynamicParams {
    /// Defaults for a target main-graph degree.
    pub fn new(degree: usize) -> Self {
        DynamicParams {
            graph: GraphConfig::new(degree),
            search: SearchParams::for_k(degree.max(10)),
            max_delta: 512,
            max_tombstone_ratio: 0.25,
            nsw_threshold: 128,
            nsw_degree: 12,
            nsw_ef: 128,
            min_main: (4 * degree).max(64),
            auto_compact: true,
        }
    }

    fn delta_cfg(&self) -> DeltaConfig {
        DeltaConfig {
            nsw_threshold: self.nsw_threshold,
            nsw_degree: self.nsw_degree,
            nsw_ef: self.nsw_ef,
        }
    }

    /// Effective floor for building a main segment: a CAGRA build
    /// needs more rows than the intermediate k-NN degree.
    fn min_main_eff(&self) -> usize {
        self.min_main.max(2 * self.graph.d_init() + 2)
    }
}

/// The compacted bulk of the index: an immutable CAGRA graph plus the
/// external id of every row (`ids[row]`, ascending — compaction lays
/// rows out in external-id order and never relabels).
pub struct MainSeg {
    index: CagraIndex<Dataset>,
    ids: Vec<u32>,
}

impl MainSeg {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// The wrapped immutable index (observability / tests).
    pub fn index(&self) -> &CagraIndex<Dataset> {
        &self.index
    }
}

/// One immutable, searchable state of the index. Readers hold an
/// `Arc<Snapshot>`; mutations build a successor and publish it.
pub struct Snapshot {
    main: Option<Arc<MainSeg>>,
    delta: Arc<DeltaSeg>,
    deleted: Arc<BTreeSet<u32>>,
}

impl Snapshot {
    fn empty(dim: usize) -> Self {
        Snapshot {
            main: None,
            delta: Arc::new(DeltaSeg::empty(dim)),
            deleted: Arc::new(BTreeSet::new()),
        }
    }

    fn main_len(&self) -> usize {
        self.main.as_ref().map_or(0, |m| m.len())
    }

    /// Rows physically present (live + tombstoned).
    fn total_rows(&self) -> usize {
        self.main_len() + self.delta.len()
    }

    /// Searchable rows. Every tombstone refers to exactly one present
    /// row (deletes validate liveness; compaction drops both
    /// together), so this is exact.
    pub fn live(&self) -> usize {
        self.total_rows() - self.deleted.len()
    }

    fn contains_live(&self, id: u32) -> bool {
        !self.deleted.contains(&id)
            && (self.delta.contains(id) || self.main.as_ref().is_some_and(|m| m.contains(id)))
    }
}

/// Point-in-time shape of a [`DynamicIndex`] (for eval tables and
/// logs; the `dyn.*` metrics carry the histories).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynamicStats {
    /// Published epoch (snapshot generation).
    pub epoch: u64,
    /// Rows in the compacted main segment.
    pub main: usize,
    /// Rows in the delta segment.
    pub delta: usize,
    /// Tombstoned rows awaiting compaction.
    pub tombstones: usize,
    /// Searchable rows.
    pub live: usize,
    /// Compactions completed so far.
    pub compactions: u64,
}

/// State shared with the background compactor.
struct Shared {
    dim: usize,
    metric: Metric,
    params: DynamicParams,
    ptr: EpochPtr<Snapshot>,
    /// Serializes every snapshot publish; holds the id counter.
    writer: Mutex<u32>,
    /// Serializes compactions (manual vs. background).
    compact_lock: Mutex<u64>,
    /// Compaction trigger: `(pending, shutdown)` under the gate.
    gate: Mutex<(bool, bool)>,
    cv: Condvar,
    compacting: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// A mutable ANN index: immutable CAGRA main segment + delta +
/// tombstones behind an epoch pointer. All methods take `&self`; the
/// index is `Sync` and meant to be shared (`Arc<DynamicIndex>`)
/// between serving threads and mutators. See module docs.
pub struct DynamicIndex {
    shared: Arc<Shared>,
    compactor: Option<JoinHandle<()>>,
}

impl DynamicIndex {
    /// An empty index accepting `dim`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, metric: Metric, params: DynamicParams) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self::spawn_compactor(Snapshot::empty(dim), dim, metric, params, 0)
    }

    /// Wrap an already-built index: its rows become the main segment
    /// with external ids `0..n`, and the id counter continues at `n`.
    ///
    /// # Panics
    /// Panics if `index` was relabeled (renumbering is a static-index
    /// layout optimization; the dynamic wrapper rebuilds its main
    /// segment on every compaction, so relabel before serving instead)
    /// or has zero dimension.
    pub fn from_index(index: CagraIndex<Dataset>, params: DynamicParams) -> Self {
        assert!(index.id_map().is_none(), "wrap the index before relabeling");
        let dim = index.store().dim();
        assert!(dim > 0, "dim must be positive");
        let n = index.store().len() as u32;
        let metric = index.metric();
        let ids: Vec<u32> = (0..n).collect();
        let snapshot = Snapshot {
            main: Some(Arc::new(MainSeg { index, ids })),
            delta: Arc::new(DeltaSeg::empty(dim)),
            deleted: Arc::new(BTreeSet::new()),
        };
        Self::spawn_compactor(snapshot, dim, metric, params, n)
    }

    fn spawn_compactor(
        snapshot: Snapshot,
        dim: usize,
        metric: Metric,
        params: DynamicParams,
        next_id: u32,
    ) -> Self {
        let auto = params.auto_compact;
        let shared = Arc::new(Shared {
            dim,
            metric,
            params,
            ptr: EpochPtr::new(Arc::new(snapshot)),
            writer: Mutex::new(next_id),
            compact_lock: Mutex::new(0),
            gate: Mutex::new((false, false)),
            cv: Condvar::new(),
            compacting: AtomicBool::new(false),
        });
        let compactor = auto.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cagra-dyn-compact".into())
                .spawn(move || compactor_loop(&shared))
                .expect("spawn compactor thread")
        });
        DynamicIndex { shared, compactor }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// Distance metric.
    pub fn metric(&self) -> Metric {
        self.shared.metric
    }

    /// Published snapshot generation; bumped by every insert, delete,
    /// and compaction swap. Cache anything derived from a search
    /// result set against this.
    pub fn epoch(&self) -> u64 {
        self.shared.ptr.epoch()
    }

    /// Searchable rows right now.
    pub fn live(&self) -> usize {
        self.shared.ptr.load().live()
    }

    /// Whether `id` is present and not tombstoned.
    pub fn contains(&self, id: u32) -> bool {
        self.shared.ptr.load().contains_live(id)
    }

    /// Current shape.
    pub fn stats(&self) -> DynamicStats {
        let snap = self.shared.ptr.load();
        DynamicStats {
            epoch: self.shared.ptr.epoch(),
            main: snap.main_len(),
            delta: snap.delta.len(),
            tombstones: snap.deleted.len(),
            live: snap.live(),
            compactions: *lock(&self.shared.compact_lock),
        }
    }

    /// Insert a vector; returns its permanent external id. The row is
    /// searchable as soon as this returns (the publish happens before
    /// the return, and ids are never reused).
    pub fn insert(&self, vector: &[f32]) -> Result<u32, SearchError> {
        if vector.len() != self.shared.dim {
            return Err(SearchError::DimMismatch { expected: self.shared.dim, got: vector.len() });
        }
        let shared = &*self.shared;
        let delta_len;
        let id;
        {
            let mut next = lock(&shared.writer);
            id = *next;
            // ALLOW(panic): documented hard limit — the u32 external id
            // space is exhausted only after 2^32 lifetime inserts.
            *next = next.checked_add(1).unwrap_or_else(|| panic!("external id space exhausted"));
            let snap = shared.ptr.load();
            let delta = snap.delta.appended(id, vector, shared.metric, shared.params.delta_cfg());
            delta_len = delta.len();
            shared.ptr.publish(Arc::new(Snapshot {
                main: snap.main.clone(),
                delta: Arc::new(delta),
                deleted: snap.deleted.clone(),
            }));
        }
        let m = obs::metrics();
        m.dyn_inserts.inc();
        m.dyn_delta_size.record(delta_len as u64);
        if delta_len >= shared.params.max_delta {
            self.request_compaction();
        }
        Ok(id)
    }

    /// Tombstone `id`. Returns whether it was live (idempotent:
    /// deleting a missing or already-deleted id is `false`, not an
    /// error). The row stops appearing in results as soon as this
    /// returns; its storage is reclaimed by the next compaction.
    pub fn delete(&self, id: u32) -> bool {
        let shared = &*self.shared;
        let ratio;
        {
            let _w = lock(&shared.writer);
            let snap = shared.ptr.load();
            if !snap.contains_live(id) {
                return false;
            }
            // ALLOW(alloc): copy-on-write tombstone set — readers of
            // the published snapshot must not observe the new entry.
            let mut deleted = (*snap.deleted).clone();
            deleted.insert(id);
            ratio = deleted.len() as f64 / snap.total_rows().max(1) as f64;
            shared.ptr.publish(Arc::new(Snapshot {
                main: snap.main.clone(),
                delta: snap.delta.clone(),
                deleted: Arc::new(deleted),
            }));
        }
        let m = obs::metrics();
        m.dyn_deletes.inc();
        m.dyn_tombstone_permille.record((ratio * 1000.0) as u64);
        if ratio > shared.params.max_tombstone_ratio {
            self.request_compaction();
        }
        true
    }

    /// Validate a request shape against the *current* snapshot. `k`
    /// validated here can become stale after deletes — key any cache
    /// of this answer on [`DynamicIndex::epoch`].
    pub fn validate_shape(&self, query_dim: usize, k: usize) -> Result<(), SearchError> {
        if query_dim != self.shared.dim {
            return Err(SearchError::DimMismatch { expected: self.shared.dim, got: query_dim });
        }
        if k == 0 {
            return Err(SearchError::ZeroK);
        }
        let live = self.live();
        if k > live {
            return Err(SearchError::KExceedsDataset { k, n: live });
        }
        Ok(())
    }

    /// Top-`k` live neighbors of `query` (external ids, ascending by
    /// `(dist, id)`).
    ///
    /// # Panics
    /// Panics on invalid input; [`DynamicIndex::try_search`] is the
    /// non-panicking form.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        // ALLOW(panic): documented panicking wrapper; `try_search` is
        // the typed-error form.
        self.try_search(query, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`DynamicIndex::search`].
    pub fn try_search(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, SearchError> {
        self.validate_shape(query.len(), k)?;
        Ok(self.search_clamped(query, k))
    }

    /// Search with `k` clamped to the live count instead of erroring —
    /// the serving hot path uses this after admission-time validation,
    /// because concurrent deletes can shrink `live` below a `k` that
    /// validated moments ago, and a dispatched batch must not panic.
    /// Returns fewer than `k` results exactly when `k > live`.
    pub fn search_clamped(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        let snap = self.shared.ptr.load();
        let k = k.min(snap.live());
        if k == 0 || query.len() != self.shared.dim {
            return Vec::new();
        }
        // Over-fetch both segments by the tombstone count: at most
        // `deleted.len()` of any prefix can be masked, so the k live
        // survivors of the merge are always reachable.
        let masked = &snap.deleted;
        let mut from_main: Vec<Neighbor> = Vec::new();
        if let Some(main) = &snap.main {
            let k_main = (k + masked.len()).min(main.len());
            let mut params = self.shared.params.search;
            params.itopk = params.itopk.max(k_main);
            // Shape is valid by construction (k_main <= n, <= itopk),
            // so the validation-free entry point is safe here.
            let mut scratch = SearchScratch::new();
            scratch.set_record_trace(false);
            main.index.search_mode_with(query, k_main, &params, Mode::SingleCta, &mut scratch);
            from_main = scratch
                .results()
                .iter()
                .filter_map(|nb| {
                    let ext = *main.ids.get(nb.id as usize)?;
                    (!masked.contains(&ext)).then_some(Neighbor::new(ext, nb.dist))
                })
                .collect();
        }
        let from_delta =
            snap.delta.search(query, k, self.shared.metric, masked, self.shared.params.delta_cfg());
        merge_topk(&from_main, &from_delta, k)
    }

    /// Thread-parallel batch search (eval/bench convenience). Each
    /// query independently loads the current snapshot.
    pub fn search_batch<Q: VectorStore>(&self, queries: &Q, k: usize) -> Vec<Vec<Neighbor>> {
        let dim = queries.dim();
        parallel_map(queries.len(), default_threads(), |qi| {
            let mut q = vec![0.0f32; dim];
            queries.get_into(qi, &mut q);
            self.search_clamped(&q, k)
        })
    }

    /// Ask the background compactor to run (no-op without one).
    fn request_compaction(&self) {
        if self.compactor.is_none() {
            return;
        }
        lock(&self.shared.gate).0 = true;
        self.shared.cv.notify_all();
    }

    /// Run one compaction synchronously: rebuild live rows into a
    /// fresh main segment (or a delta-only snapshot when too few
    /// remain), splice in concurrent mutations, swap. Blocks if the
    /// background compactor is mid-cycle.
    pub fn compact_now(&self) {
        compact_once(&self.shared);
    }

    /// True while a compaction cycle is rebuilding (test/obs hook).
    pub fn is_compacting(&self) -> bool {
        self.shared.compacting.load(Ordering::Acquire)
    }
}

impl Drop for DynamicIndex {
    fn drop(&mut self) {
        lock(&self.shared.gate).1 = true;
        self.shared.cv.notify_all();
        if let Some(h) = self.compactor.take() {
            let _ = h.join();
        }
    }
}

fn compactor_loop(shared: &Shared) {
    loop {
        {
            let mut gate = lock(&shared.gate);
            while !gate.0 && !gate.1 {
                gate = shared.cv.wait(gate).unwrap_or_else(|p| p.into_inner());
            }
            if gate.1 {
                return;
            }
            gate.0 = false;
        }
        compact_once(shared);
    }
}

/// One full compaction cycle. The expensive rebuild runs off the
/// writer lock — inserts, deletes, and searches proceed concurrently —
/// and only the splice-and-swap at the end serializes with writers.
fn compact_once(shared: &Shared) {
    let mut cycles = lock(&shared.compact_lock);
    shared.compacting.store(true, Ordering::Release);
    let t0 = Instant::now();
    let s0 = shared.ptr.load();

    // Phase 1 (off-lock): gather live rows in ascending external-id
    // order. Main ids all precede delta ids (the id counter is
    // monotonic and compaction preserves order), so concatenation
    // stays sorted.
    let mut rows: Vec<(u32, Vec<f32>)> = Vec::with_capacity(s0.total_rows());
    if let Some(main) = &s0.main {
        let store = main.index.store();
        for (row, &id) in main.ids.iter().enumerate() {
            if !s0.deleted.contains(&id) {
                rows.push((id, store.row(row).to_vec()));
            }
        }
    }
    for row in 0..s0.delta.len() {
        let id = s0.delta.ids()[row];
        if !s0.deleted.contains(&id) {
            rows.push((id, s0.delta.row(row).to_vec()));
        }
    }

    // Phase 2 (off-lock): rebuild. Below the viability floor the rows
    // stay delta-resident (brute/NSW searchable) and no main exists.
    let (new_main, leftover) = if rows.len() >= shared.params.min_main_eff() {
        let mut flat = Vec::with_capacity(rows.len() * shared.dim);
        let mut ids = Vec::with_capacity(rows.len());
        for (id, v) in &rows {
            ids.push(*id);
            flat.extend_from_slice(v);
        }
        let store = Dataset::from_flat(flat, shared.dim);
        let (index, _report) = CagraIndex::build(store, shared.metric, &shared.params.graph);
        (Some(Arc::new(MainSeg { index, ids })), Vec::new())
    } else {
        (None, rows)
    };

    // Phase 3 (writer lock): splice concurrent mutations and swap.
    // The delta is append-only, so everything past s0's length arrived
    // during the rebuild; tombstones added since s0 still refer to
    // rows we just kept, so they carry over.
    {
        let _w = lock(&shared.writer);
        let s1 = shared.ptr.load();
        let mut tail = leftover;
        for row in s0.delta.len()..s1.delta.len() {
            tail.push((s1.delta.ids()[row], s1.delta.row(row).to_vec()));
        }
        let delta =
            DeltaSeg::from_rows(shared.dim, &tail, shared.metric, shared.params.delta_cfg());
        let deleted: BTreeSet<u32> = s1.deleted.difference(&s0.deleted).copied().collect();
        shared.ptr.publish(Arc::new(Snapshot {
            main: new_main,
            delta: Arc::new(delta),
            deleted: Arc::new(deleted),
        }));
    }
    *cycles += 1;
    shared.compacting.store(false, Ordering::Release);
    let m = obs::metrics();
    m.dyn_compactions.inc();
    m.dyn_compaction_ns.record(t0.elapsed().as_nanos() as u64);
}

/// Merge two `(dist, id)`-ascending result lists, keeping the `k`
/// best. Both sides carry external ids and are already tombstone-free
/// and duplicate-free (main and delta rows are disjoint).
fn merge_topk(a: &[Neighbor], b: &[Neighbor], k: usize) -> Vec<Neighbor> {
    let mut out = Vec::with_capacity(k.min(a.len() + b.len()));
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if cmp_neighbor(x, y).is_le() {
                    out.push(*x);
                    i += 1;
                } else {
                    out.push(*y);
                    j += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> DynamicParams {
        let mut p = DynamicParams::new(8);
        p.auto_compact = false;
        p.nsw_threshold = 32;
        p.nsw_degree = 6;
        p.min_main = 48;
        p.max_delta = 64;
        p
    }

    fn vec_for(i: u32, dim: usize) -> Vec<f32> {
        (0..dim).map(|d| ((i as usize * dim + d) as f32 * 0.173).sin()).collect()
    }

    #[test]
    fn empty_index_rejects_and_reports() {
        let ix = DynamicIndex::new(4, Metric::SquaredL2, small_params());
        assert_eq!(ix.live(), 0);
        assert_eq!(ix.epoch(), 0);
        assert_eq!(ix.try_search(&[0.0; 4], 1), Err(SearchError::KExceedsDataset { k: 1, n: 0 }));
        assert_eq!(
            ix.try_search(&[0.0; 3], 1),
            Err(SearchError::DimMismatch { expected: 4, got: 3 })
        );
        assert_eq!(ix.try_search(&[0.0; 4], 0), Err(SearchError::ZeroK));
        assert!(ix.search_clamped(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn insert_assigns_monotonic_ids_and_bumps_epoch() {
        let ix = DynamicIndex::new(4, Metric::SquaredL2, small_params());
        assert_eq!(ix.insert(&[1.0, 0.0, 0.0, 0.0]), Ok(0));
        assert_eq!(ix.insert(&[0.0, 1.0, 0.0, 0.0]), Ok(1));
        assert_eq!(ix.insert(&[9.0]), Err(SearchError::DimMismatch { expected: 4, got: 1 }));
        assert_eq!(ix.epoch(), 2);
        assert_eq!(ix.live(), 2);
        let hits = ix.search(&[1.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn delete_masks_immediately_and_is_idempotent() {
        let ix = DynamicIndex::new(4, Metric::SquaredL2, small_params());
        for i in 0..10u32 {
            ix.insert(&vec_for(i, 4)).unwrap();
        }
        let top = ix.search(&vec_for(3, 4), 1)[0].id;
        assert!(ix.delete(top));
        assert!(!ix.delete(top), "double delete reports false");
        assert!(!ix.delete(999), "unknown id reports false");
        assert!(ix.search(&vec_for(3, 4), 9).iter().all(|nb| nb.id != top));
        assert_eq!(ix.live(), 9);
        assert!(!ix.contains(top));
    }

    #[test]
    fn compaction_builds_main_and_drops_tombstones() {
        let ix = DynamicIndex::new(8, Metric::SquaredL2, small_params());
        for i in 0..200u32 {
            ix.insert(&vec_for(i, 8)).unwrap();
        }
        for id in 0..20u32 {
            assert!(ix.delete(id));
        }
        let before = ix.stats();
        assert_eq!((before.main, before.delta, before.tombstones), (0, 200, 20));
        ix.compact_now();
        let after = ix.stats();
        assert_eq!((after.main, after.delta, after.tombstones), (180, 0, 0));
        assert_eq!(after.live, 180);
        assert_eq!(after.compactions, 1);
        // Deleted ids stay gone; survivors keep their external ids.
        let hits = ix.search(&vec_for(30, 8), 5);
        assert_eq!(hits[0].id, 30);
        assert!(hits.iter().all(|nb| nb.id >= 20));
    }

    #[test]
    fn tiny_live_set_compacts_to_delta_only() {
        let ix = DynamicIndex::new(4, Metric::SquaredL2, small_params());
        for i in 0..10u32 {
            ix.insert(&vec_for(i, 4)).unwrap();
        }
        ix.delete(4);
        ix.compact_now();
        let s = ix.stats();
        assert_eq!((s.main, s.delta, s.tombstones, s.live), (0, 9, 0, 9));
        assert!(ix.search(&vec_for(5, 4), 9).iter().all(|nb| nb.id != 4));
    }

    #[test]
    fn from_index_continues_ids_after_the_wrapped_rows() {
        use dataset::synth::{Family, SynthSpec};
        let spec = SynthSpec { dim: 8, n: 300, queries: 5, family: Family::Gaussian, seed: 7 };
        let (base, queries) = spec.generate();
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
        let ix = DynamicIndex::from_index(index, small_params());
        assert_eq!(ix.live(), 300);
        assert_eq!(ix.insert(queries.row(0)), Ok(300));
        let hits = ix.search(queries.row(0), 3);
        assert_eq!(hits[0].id, 300, "the fresh exact duplicate must win");
        assert_eq!(hits[0].dist, 0.0);
    }

    #[test]
    fn merge_prefers_globally_closest_and_breaks_ties_by_id() {
        let a = [Neighbor::new(1, 0.5), Neighbor::new(3, 2.0)];
        let b = [Neighbor::new(2, 0.5), Neighbor::new(4, 1.0)];
        let got = merge_topk(&a, &b, 3);
        let ids: Vec<u32> = got.iter().map(|nb| nb.id).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(merge_topk(&a, &[], 10).len(), 2);
        assert!(merge_topk(&[], &[], 3).is_empty());
    }
}
