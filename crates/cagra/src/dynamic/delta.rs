//! The delta segment: freshly inserted vectors not yet folded into
//! the main CAGRA graph.
//!
//! Two regimes, switched on size:
//!
//! * **Brute** (small deltas) — no structure at all; a search
//!   gang-scores every delta row through the batched distance kernel
//!   ([`knn::brute::exact_search`]), which beats any graph up to a
//!   few hundred rows.
//! * **NSW** (once the delta outgrows [`nsw_threshold`]) — inserts
//!   link each new row to its nearest existing delta rows
//!   (bidirectional, lists truncated to the closest `2m`), and
//!   searches run a deterministic best-first beam over those links —
//!   the classic navigable-small-world insertion CAGRA itself uses as
//!   a baseline (`ganns`), scoped to the delta only.
//!
//! A segment is immutable; [`DeltaSeg::appended`] builds the successor
//! copy-on-write so concurrent readers keep searching the snapshot
//! they cloned. External ids are appended in strictly increasing
//! order (the index's id counter is monotonic), so `ids` is always
//! sorted and membership is a binary search.

use dataset::{Dataset, VectorStore};
use distance::{DistanceOracle, Metric};
use knn::topk::{cmp_neighbor, Neighbor, TopK};
use std::collections::BTreeSet;

/// Delta tuning knobs (a slice of [`crate::dynamic::DynamicParams`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DeltaConfig {
    /// Row count at which the delta switches from brute scans to NSW
    /// links.
    pub nsw_threshold: usize,
    /// Links per inserted row (`M`); lists are truncated to the
    /// closest `2M` after reverse links.
    pub nsw_degree: usize,
    /// Beam width (`ef`) for NSW-mode searches and insertions. The
    /// delta is bounded by the compaction trigger, so a generous beam
    /// keeps delta recall near-exact at trivial cost.
    pub nsw_ef: usize,
}

/// An immutable batch of not-yet-compacted rows. See module docs.
#[derive(Debug)]
pub(crate) struct DeltaSeg {
    vecs: Dataset,
    /// External id of each row, strictly ascending.
    ids: Vec<u32>,
    /// NSW adjacency (row indices); empty until the segment crosses
    /// `nsw_threshold`.
    links: Vec<Vec<u32>>,
}

impl DeltaSeg {
    pub fn empty(dim: usize) -> Self {
        DeltaSeg { vecs: Dataset::empty(dim), ids: Vec::new(), links: Vec::new() }
    }

    /// Build a segment from `(external id, vector)` rows already in
    /// ascending id order, linking them if past the NSW threshold.
    pub fn from_rows(
        dim: usize,
        rows: &[(u32, Vec<f32>)],
        metric: Metric,
        cfg: DeltaConfig,
    ) -> Self {
        let mut seg = DeltaSeg::empty(dim);
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "delta rows must be id-sorted");
        for (id, v) in rows {
            seg.push_row(*id, v, metric, cfg);
        }
        seg
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    pub fn row(&self, i: usize) -> &[f32] {
        self.vecs.row(i)
    }

    pub fn contains(&self, id: u32) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Copy-on-write append: the successor segment with one more row.
    /// `id` must exceed every stored id (monotonic external ids).
    pub fn appended(&self, id: u32, v: &[f32], metric: Metric, cfg: DeltaConfig) -> Self {
        debug_assert!(self.ids.last().is_none_or(|&last| last < id));
        // ALLOW(alloc): copy-on-write by design — readers of the old
        // segment must never observe the new row.
        let mut seg = DeltaSeg {
            vecs: Dataset::from_flat(self.vecs.as_flat().to_vec(), self.vecs.dim()),
            ids: self.ids.clone(),
            links: self.links.clone(),
        };
        seg.push_row(id, v, metric, cfg);
        seg
    }

    fn push_row(&mut self, id: u32, v: &[f32], metric: Metric, cfg: DeltaConfig) {
        self.vecs.push(v);
        self.ids.push(id);
        let n = self.ids.len();
        if n < cfg.nsw_threshold.max(2) {
            return;
        }
        if self.links.is_empty() && n > 1 {
            // Crossing the threshold: link every existing row by
            // replaying insertions in row order (deterministic).
            self.links = vec![Vec::new(); n];
            for row in 1..n {
                self.link_row(row, metric, cfg);
            }
        } else {
            self.links.push(Vec::new());
            self.link_row(n - 1, metric, cfg);
        }
    }

    /// NSW insertion for `row`: beam-search the rows before it for the
    /// `M` nearest, link bidirectionally, truncate overfull lists.
    fn link_row(&mut self, row: usize, metric: Metric, cfg: DeltaConfig) {
        let m = cfg.nsw_degree.max(1);
        let oracle = DistanceOracle::new(&self.vecs, metric);
        let prepared = oracle.prepare(self.vecs.row(row));
        let nearest = beam_search(
            // ALLOW(panic): callers push `links[row]` before linking, so
            // `row < self.links.len()` and the prefix slice is in range.
            &self.links[..row],
            &oracle,
            &prepared,
            row,
            m,
            cfg.nsw_ef.max(2 * m),
        );
        for nb in nearest {
            let u = nb.id as usize;
            // ALLOW(panic): `row` is in range per above; `u` comes from
            // beam_search over `links[..row]`, so `u < row`.
            self.links[row].push(nb.id);
            self.links[u].push(row as u32); // ALLOW(panic): `u < row` per above.
                                            // ALLOW(panic): `u < row` per above.
            truncate_closest(&mut self.links[u], u, &oracle, 2 * m);
        }
        // ALLOW(panic): `row` is in range per above.
        truncate_closest(&mut self.links[row], row, &oracle, 2 * m);
    }

    /// Top-`k` *live* rows for `query` as external-id neighbors,
    /// ascending by `(dist, id)`. `masked` is the tombstone set; dead
    /// rows still steer NSW traversal but never appear in results.
    pub fn search(
        &self,
        query: &[f32],
        k: usize,
        metric: Metric,
        masked: &BTreeSet<u32>,
        cfg: DeltaConfig,
    ) -> Vec<Neighbor> {
        if self.ids.is_empty() || k == 0 {
            return Vec::new();
        }
        // Over-fetch so masking cannot starve the merge: at most
        // `masked.len()` of the closest rows can be dead.
        let fetch = (k + masked.len()).min(self.ids.len());
        let internal = if self.links.is_empty() {
            knn::brute::exact_search(&self.vecs, metric, query, fetch)
        } else {
            let oracle = DistanceOracle::new(&self.vecs, metric);
            let prepared = oracle.prepare(query);
            // `ef` floors the beam; it also grows with segment size so
            // a delta that has outrun its compaction trigger (manual
            // compaction, churn tests) keeps near-exact recall.
            let beam = cfg.nsw_ef.max(2 * fetch).max(self.ids.len() / 8);
            beam_search(&self.links, &oracle, &prepared, usize::MAX, fetch, beam)
        };
        internal
            .into_iter()
            .filter_map(|nb| {
                let ext = *self.ids.get(nb.id as usize)?;
                (!masked.contains(&ext)).then_some(Neighbor::new(ext, nb.dist))
            })
            .take(k)
            .collect()
    }
}

/// Deterministic best-first beam over `links` (rows `0..links.len()`),
/// skipping `exclude`. Entry points: row 0 and the last row. Returns
/// the `k` closest visited rows ascending by `(dist, id)`.
fn beam_search(
    links: &[Vec<u32>],
    oracle: &DistanceOracle<'_, Dataset>,
    prepared: &distance::PreparedQuery<'_>,
    exclude: usize,
    k: usize,
    beam: usize,
) -> Vec<Neighbor> {
    let n = links.len();
    if n == 0 {
        return Vec::new();
    }
    let mut visited = vec![false; n];
    let mut top = TopK::new(beam.max(k).max(1));
    // Frontier kept sorted descending so the best candidate pops off
    // the back; the delta is small enough that insertion sort wins.
    let mut frontier: Vec<Neighbor> = Vec::new();
    let mut dist = [0.0f32; 1];
    let mut offer =
        |row: u32, visited: &mut Vec<bool>, top: &mut TopK, frontier: &mut Vec<Neighbor>| {
            let r = row as usize;
            // ALLOW(panic): `visited` has length n and `r < n` was just checked.
            if r >= n || visited[r] || r == exclude {
                return;
            }
            visited[r] = true; // ALLOW(panic): same `r < n` guard as above.
            oracle.to_rows(prepared, &[row], &mut dist);
            // ALLOW(panic): `dist` is a fixed [f32; 1]; index 0 always exists.
            let nb = Neighbor::new(row, dist[0]);
            top.push(nb);
            let at = frontier.partition_point(|e| cmp_neighbor(e, &nb).is_gt());
            frontier.insert(at, nb);
        };
    offer(0, &mut visited, &mut top, &mut frontier);
    offer(n as u32 - 1, &mut visited, &mut top, &mut frontier);
    while let Some(best) = frontier.pop() {
        // `threshold` is +inf until the beam fills, so early exit only
        // fires once `beam` candidates are held.
        if best.dist > top.threshold() {
            break;
        }
        for &u in links.get(best.id as usize).into_iter().flatten() {
            offer(u, &mut visited, &mut top, &mut frontier);
        }
    }
    let mut out = top.into_sorted();
    out.truncate(k);
    out
}

/// Keep the `cap` closest links of row `v`, dropping duplicates.
fn truncate_closest(
    links: &mut Vec<u32>,
    v: usize,
    oracle: &DistanceOracle<'_, Dataset>,
    cap: usize,
) {
    links.sort_unstable();
    links.dedup();
    if links.len() <= cap {
        return;
    }
    let mut with_dist: Vec<Neighbor> =
        links.iter().map(|&u| Neighbor::new(u, oracle.between_rows(v, u as usize))).collect();
    with_dist.sort_unstable_by(cmp_neighbor);
    with_dist.truncate(cap);
    *links = with_dist.into_iter().map(|nb| nb.id).collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: DeltaConfig = DeltaConfig { nsw_threshold: 8, nsw_degree: 4, nsw_ef: 32 };

    fn grown(n: usize, dim: usize) -> DeltaSeg {
        let mut seg = DeltaSeg::empty(dim);
        for i in 0..n {
            let v: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.37).collect();
            seg = seg.appended(i as u32 * 2, &v, Metric::SquaredL2, CFG);
        }
        seg
    }

    #[test]
    fn append_is_copy_on_write() {
        let a = grown(3, 4);
        let b = a.appended(100, &[9.0; 4], Metric::SquaredL2, CFG);
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 4);
        assert!(b.contains(100) && !a.contains(100));
    }

    #[test]
    fn brute_and_nsw_regimes_agree_with_exact_search() {
        for n in [6usize, 40] {
            let seg = grown(n, 8);
            let q: Vec<f32> = (0..8).map(|d| (n / 2 * 8 + d) as f32 * 0.37).collect();
            let got = seg.search(&q, 5, Metric::SquaredL2, &BTreeSet::new(), CFG);
            let exact = knn::brute::exact_search(&seg.vecs, Metric::SquaredL2, &q, 5);
            let exact_ids: Vec<u32> = exact.iter().map(|nb| seg.ids[nb.id as usize]).collect();
            let got_ids: Vec<u32> = got.iter().map(|nb| nb.id).collect();
            assert_eq!(got_ids, exact_ids, "n = {n} (links: {})", !seg.links.is_empty());
        }
    }

    #[test]
    fn masked_rows_never_surface_but_fetch_still_fills_k() {
        let seg = grown(30, 8);
        let q: Vec<f32> = (0..8).map(|d| d as f32 * 0.37).collect();
        let full = seg.search(&q, 6, Metric::SquaredL2, &BTreeSet::new(), CFG);
        let masked: BTreeSet<u32> = full.iter().take(3).map(|nb| nb.id).collect();
        let got = seg.search(&q, 6, Metric::SquaredL2, &masked, CFG);
        assert_eq!(got.len(), 6, "masking must not shrink the result set");
        assert!(got.iter().all(|nb| !masked.contains(&nb.id)));
    }
}
