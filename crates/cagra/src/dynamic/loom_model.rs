//! `cfg(loom)` model for the epoch-pointer publication protocol
//! (ISSUE 10): a reader cloning snapshots races a compaction-style
//! publisher and a deleter, and must only ever observe fully-formed,
//! invariant-holding snapshots with a monotonic epoch.
//!
//! The model drives the *real* [`EpochPtr`] (std sync primitives
//! inside) from loom-spawned threads, mirroring how `knn`'s models
//! exercise the real `LockedLists`. Run with
//! `RUSTFLAGS="--cfg loom" cargo test -p cagra --lib loom`.

use super::epoch::EpochPtr;
use loom::sync::{Arc, Mutex};
use loom::thread;

/// Stand-in snapshot: `rows` plays the delta, `dead` the tombstones.
/// Invariant (mirrors `Snapshot`): every tombstone names a present
/// row, so `live = rows - dead` never underflows.
#[derive(Clone)]
struct MiniSnap {
    gen: u64,
    rows: Vec<u32>,
    dead: Vec<u32>,
}

impl MiniSnap {
    fn check(&self) {
        assert!(
            self.dead.iter().all(|d| self.rows.contains(d)),
            "snapshot {} has a tombstone naming an absent row",
            self.gen
        );
        // A torn publish would mix fields of different generations.
        assert!(
            self.rows.iter().all(|&r| r / 100 <= self.gen as u32 + 1),
            "snapshot {} carries rows from a later generation",
            self.gen
        );
    }
}

/// Reader clone vs. compaction-style publish vs. delete publish: the
/// reader only sees complete snapshots and a monotonic epoch.
#[test]
fn readers_only_observe_complete_snapshots() {
    loom::model(|| {
        let ptr = Arc::new(EpochPtr::new(std::sync::Arc::new(MiniSnap {
            gen: 0,
            rows: vec![1, 2, 3],
            dead: vec![],
        })));
        // The index's writer mutex: publishers are serialized, readers
        // never touch it.
        let writer = Arc::new(Mutex::new(()));

        // "Insert + compact": replaces the row set wholesale, like a
        // compaction swap.
        let compactor = {
            let ptr = Arc::clone(&ptr);
            let writer = Arc::clone(&writer);
            thread::spawn(move || {
                let _w = writer.lock().unwrap();
                let cur = ptr.load();
                let gen = cur.gen + 1;
                let rows: Vec<u32> =
                    cur.rows.iter().map(|&r| r + 100).filter(|&r| r % 2 == 1).collect();
                ptr.publish(std::sync::Arc::new(MiniSnap { gen, rows, dead: vec![] }));
            })
        };
        // "Delete": copy-on-write tombstone added to whatever state is
        // current at lock acquisition.
        let deleter = {
            let ptr = Arc::clone(&ptr);
            let writer = Arc::clone(&writer);
            thread::spawn(move || {
                let _w = writer.lock().unwrap();
                let cur = ptr.load();
                let Some(&victim) = cur.rows.first() else { return };
                let mut dead = cur.dead.clone();
                dead.push(victim);
                ptr.publish(std::sync::Arc::new(MiniSnap {
                    gen: cur.gen + 1,
                    rows: cur.rows.clone(),
                    dead,
                }));
            })
        };
        // Reader: lock-free snapshot clones, invariant + monotonicity.
        let reader = {
            let ptr = Arc::clone(&ptr);
            thread::spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..3 {
                    let e = ptr.epoch();
                    let snap = ptr.load();
                    snap.check();
                    assert!(e >= last_epoch, "epoch went backwards");
                    last_epoch = e;
                }
            })
        };
        compactor.join().unwrap();
        deleter.join().unwrap();
        reader.join().unwrap();

        // Quiescent state: both serialized publishes landed.
        assert_eq!(ptr.epoch(), 2);
        ptr.load().check();
    });
}
