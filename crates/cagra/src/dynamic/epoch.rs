//! Epoch-stamped snapshot pointer: the publication primitive behind
//! [`crate::dynamic::DynamicIndex`].
//!
//! Readers clone an `Arc` to the current snapshot and search it with
//! no further coordination; a writer publishes a *new* snapshot and
//! bumps the epoch counter, never mutating anything a reader may
//! hold. Two slots are kept so a publish writes the inactive slot and
//! then flips one atomic — a reader is never blocked behind the store
//! of a large snapshot, only behind another reader's `Arc` clone.
//!
//! Semantics (the contract the `cfg(loom)` model checks):
//!
//! * [`EpochPtr::load`] always returns a fully-published snapshot —
//!   either the one current when the call started or a newer one,
//!   never a torn or dropped value.
//! * [`EpochPtr::epoch`] is monotonic, and after `publish` returns,
//!   a `load` that observes the new epoch observes the new snapshot.
//!
//! Publishers must be externally serialized (the index holds its
//! writer mutex across every `publish`); concurrent readers need no
//! coordination beyond this type.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with a published-generation
/// counter. See the module docs for the reader/writer contract.
#[derive(Debug)]
pub struct EpochPtr<T> {
    /// Double buffer: `active` indexes the slot readers clone from;
    /// a publish rewrites the *inactive* slot before flipping.
    slots: [Mutex<Arc<T>>; 2],
    active: AtomicUsize,
    epoch: AtomicU64,
}

impl<T> EpochPtr<T> {
    /// Wrap an initial snapshot at epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        EpochPtr {
            slots: [Mutex::new(Arc::clone(&initial)), Mutex::new(initial)],
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Clone the current snapshot. Wait-free against publishers (a
    /// publish touches the other slot); the short critical section
    /// only covers the `Arc` refcount bump.
    pub fn load(&self) -> Arc<T> {
        let a = self.active.load(Ordering::Acquire) & 1;
        // A poisoned slot mutex can only mean a reader panicked while
        // cloning; the Arc inside is still valid.
        // ALLOW(panic): `a` is masked to 0|1 and `slots` has exactly 2.
        Arc::clone(&self.slots[a].lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// The published generation: bumped by every [`EpochPtr::publish`].
    /// Consumers key caches on this (`serve`'s shape cache) so state
    /// derived from one snapshot is revalidated after a swap.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Install `next` as the current snapshot and return the new
    /// epoch. Callers must hold the owning structure's writer lock —
    /// concurrent publishes would race on the inactive slot.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let inactive = (self.active.load(Ordering::Acquire) & 1) ^ 1;
        // ALLOW(panic): `inactive` is masked to 0|1 and `slots` has exactly 2.
        *self.slots[inactive].lock().unwrap_or_else(|p| p.into_inner()) = next;
        self.active.store(inactive, Ordering::Release);
        obs::metrics().dyn_epoch_swaps.inc();
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_swaps_and_bumps_epoch() {
        let p = EpochPtr::new(Arc::new(1u32));
        assert_eq!(*p.load(), 1);
        assert_eq!(p.epoch(), 0);
        assert_eq!(p.publish(Arc::new(2)), 1);
        assert_eq!(*p.load(), 2);
        assert_eq!(p.publish(Arc::new(3)), 2);
        assert_eq!(*p.load(), 3);
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn old_snapshots_stay_valid_across_publishes() {
        let p = EpochPtr::new(Arc::new(vec![1, 2, 3]));
        let held = p.load();
        p.publish(Arc::new(vec![4]));
        p.publish(Arc::new(vec![5]));
        // The reader's clone is untouched by both swaps (including the
        // second, which rewrote the slot the clone came from).
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*p.load(), vec![5]);
    }
}
