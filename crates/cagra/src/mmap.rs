//! Memory-mapped full-precision vectors — the rerank source for
//! two-phase search.
//!
//! A PQ-compressed index keeps only `m` bytes per vector resident; the
//! exact rerank pass still needs the original f32 rows. Bundle format
//! v3 ([`crate::index_io`]) appends them after the graph blob, 8-byte
//! aligned and in **original** id order, and this module maps that
//! tail region straight from disk: the OS pages in only the rows the
//! rerank actually touches, so a 10M-vector full-precision payload
//! costs no resident memory up front.
//!
//! `mmap`/`munmap` are declared directly via `extern "C"` — std
//! already links the platform C library, and the workspace carries no
//! `libc` dependency. Non-unix or big-endian targets (the on-disk
//! format is little-endian) and any mapping failure fall back to
//! reading the region into a heap buffer: identical values, just
//! resident.

use dataset::VectorStore;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::ffi::c_void;

    /// `PROT_READ` / `MAP_PRIVATE` share these values on every unix
    /// target Rust supports (Linux, macOS, the BSDs).
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    /// `MAP_FAILED` is `(void*)-1`.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only `n x dim` f32 matrix backed by a file region — mapped
/// when the platform allows, heap-resident otherwise. Values are
/// identical either way; only residency differs.
#[derive(Debug)]
pub struct MmapVectors {
    backing: Backing,
    n: usize,
    dim: usize,
}

#[derive(Debug)]
enum Backing {
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(Mapping),
    Heap(Vec<f32>),
}

#[cfg(all(unix, target_endian = "little"))]
#[derive(Debug)]
struct Mapping {
    base: *mut std::ffi::c_void,
    map_len: usize,
    /// Byte offset of the vector data inside the mapping (the map
    /// starts at a page-aligned offset at or before the data).
    data_off: usize,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE — the pointed-to pages
// are never written through this handle and carry no interior
// mutability. `munmap` runs only in `Drop`, which has exclusive
// access, so sharing or moving the handle across threads cannot
// invalidate outstanding reads (slices borrow the handle).
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Send for Mapping {}
// SAFETY: as above — concurrent `&Mapping` access performs only reads
// of immutable pages.
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for Mapping {}

#[cfg(all(unix, target_endian = "little"))]
impl Mapping {
    /// A multiple of every page size in common use (4 KiB, 16 KiB,
    /// 64 KiB): rounding the file offset down to this is always
    /// page-aligned, without querying `sysconf`.
    const OFFSET_ALIGN: u64 = 64 * 1024;

    /// Map `bytes` bytes starting at `byte_off` (must be nonzero
    /// length; caller validated the region lies inside the file).
    /// Returns `None` on any failure so the caller can fall back.
    fn try_map(file: &File, byte_off: u64, bytes: usize) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        if byte_off > i64::MAX as u64 {
            return None;
        }
        let aligned = byte_off - byte_off % Self::OFFSET_ALIGN;
        let data_off = (byte_off - aligned) as usize;
        let map_len = data_off.checked_add(bytes)?;
        // SAFETY: null addr lets the kernel place the mapping; `fd` is
        // open for the duration of the call; `aligned` is page-aligned
        // and the region was validated to lie inside the file. Failure
        // returns MAP_FAILED, handled below (the mapping outlives the
        // fd — POSIX keeps file mappings valid after close).
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                map_len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                aligned as i64,
            )
        };
        if base == sys::map_failed() || base.is_null() {
            return None;
        }
        Some(Mapping { base, map_len, data_off })
    }

    /// Pointer to the first f32 of the vector region.
    fn data_ptr(&self) -> *const f32 {
        debug_assert_eq!((self.base as usize + self.data_off) % std::mem::align_of::<f32>(), 0);
        // SAFETY: `data_off < map_len` by construction (`try_map`
        // requires nonzero `bytes`), so the offset pointer stays
        // inside the mapped allocation.
        unsafe { (self.base as *const u8).add(self.data_off) as *const f32 }
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `base`/`map_len` come from the successful mmap in
        // `try_map` and are unmapped exactly once (Drop runs once).
        unsafe {
            sys::munmap(self.base, self.map_len);
        }
    }
}

impl MmapVectors {
    /// Open the `n x dim` f32 region starting `byte_off` bytes into
    /// `path`. The offset must be 4-byte aligned (the v3 bundle writer
    /// pads to 8) and the region must lie inside the file — both are
    /// validated here so a truncated or corrupt bundle fails at open
    /// time, not with a fault mid-search.
    pub fn open(path: &Path, byte_off: u64, n: usize, dim: usize) -> io::Result<MmapVectors> {
        assert!(dim > 0, "dimension must be positive");
        let bytes = n
            .checked_mul(dim)
            .and_then(|t| t.checked_mul(4))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "vector region overflow"))?;
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        match byte_off.checked_add(bytes as u64) {
            Some(end) if end <= file_len => {}
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("vector region [{byte_off}, +{bytes}) exceeds file length {file_len}"),
                ));
            }
        }
        if !byte_off.is_multiple_of(4) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "vector region offset is not 4-byte aligned",
            ));
        }
        #[cfg(all(unix, target_endian = "little"))]
        if bytes > 0 {
            if let Some(m) = Mapping::try_map(&file, byte_off, bytes) {
                return Ok(MmapVectors { backing: Backing::Mapped(m), n, dim });
            }
        }
        // Fallback: materialize the region, decoding little-endian
        // explicitly (matches the mapped view on LE hosts).
        file.seek(SeekFrom::Start(byte_off))?;
        let mut raw = vec![0u8; bytes];
        file.read_exact(&mut raw)?;
        let flat =
            raw.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect();
        Ok(MmapVectors { backing: Backing::Heap(flat), n, dim })
    }

    /// True when the vectors are file-backed (no resident copy).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(_) => true,
            Backing::Heap(_) => false,
        }
    }

    /// Row `i` as a borrowed f32 slice.
    pub fn row(&self, i: usize) -> &[f32] {
        // ALLOW(panic): this bound check is the SAFETY precondition of
        // the mapped branch below; removing it would be unsound.
        assert!(i < self.n, "row {i} out of bounds ({} rows)", self.n);
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(m) => {
                // SAFETY: `i < n` was asserted, so the row lies inside
                // the validated `n * dim` f32 region; the pointer is
                // 4-aligned (offset validated at open, base
                // page-aligned) and the pages are immutable for
                // `&self`'s lifetime.
                unsafe { std::slice::from_raw_parts(m.data_ptr().add(i * self.dim), self.dim) }
            }
            // ALLOW(panic): `i < n` asserted above, so the row range
            // lies inside the `n * dim` heap buffer.
            Backing::Heap(v) => &v[i * self.dim..(i + 1) * self.dim],
        }
    }

    /// The whole region as one row-major f32 slice.
    pub fn flat(&self) -> &[f32] {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(m) => {
                // SAFETY: the full `n * dim` f32 region was validated
                // to lie inside the file at open; alignment as in
                // `row`.
                unsafe { std::slice::from_raw_parts(m.data_ptr(), self.n * self.dim) }
            }
            Backing::Heap(v) => v,
        }
    }
}

impl VectorStore for MmapVectors {
    fn len(&self) -> usize {
        self.n
    }
    fn dim(&self) -> usize {
        self.dim
    }
    fn get_into(&self, i: usize, out: &mut [f32]) {
        out.copy_from_slice(self.row(i));
    }
    /// Resident bytes per vector: zero when file-backed (pages live in
    /// the OS cache, not the process heap), full f32 width otherwise.
    fn bytes_per_vector(&self) -> usize {
        if self.is_mapped() {
            0
        } else {
            self.dim * 4
        }
    }
    fn row_f32(&self, i: usize) -> Option<&[f32]> {
        Some(self.row(i))
    }
    fn flat_f32(&self) -> Option<&[f32]> {
        Some(self.flat())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn write_file(tag: &str, header: usize, flat: &[f32]) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("cagra_mmap_{}_{tag}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(&vec![0xABu8; header]).unwrap();
        let mut raw = Vec::with_capacity(flat.len() * 4);
        for &x in flat {
            raw.extend_from_slice(&x.to_le_bytes());
        }
        f.write_all(&raw).unwrap();
        path
    }

    #[test]
    fn rows_match_source_values() {
        let flat: Vec<f32> = (0..40).map(|x| x as f32 * 0.5 - 3.0).collect();
        let path = write_file("rows", 16, &flat);
        let v = MmapVectors::open(&path, 16, 10, 4).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(v.dim(), 4);
        assert_eq!(v.flat(), &flat[..]);
        assert_eq!(v.row(3), &flat[12..16]);
        let mut out = [0.0f32; 4];
        v.get_into(7, &mut out);
        assert_eq!(&out, &flat[28..32]);
        assert_eq!(v.row_f32(0), Some(&flat[0..4]));
        #[cfg(all(unix, target_endian = "little"))]
        {
            assert!(v.is_mapped(), "unix little-endian host should map");
            assert_eq!(v.bytes_per_vector(), 0, "mapped pages are not resident");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_survives_file_deletion() {
        // POSIX semantics: the mapping holds the data alive after the
        // directory entry is gone — bundles may be replaced while an
        // index serves.
        let flat: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let path = write_file("unlink", 8, &flat);
        let v = MmapVectors::open(&path, 8, 2, 4).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(v.row(1), &flat[4..8]);
    }

    #[test]
    fn out_of_file_region_rejected() {
        let path = write_file("short", 0, &[1.0, 2.0]);
        assert!(MmapVectors::open(&path, 0, 4, 2).is_err());
        assert!(MmapVectors::open(&path, u64::MAX - 2, 1, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unaligned_offset_rejected() {
        let path = write_file("align", 3, &[1.0, 2.0]);
        assert!(MmapVectors::open(&path, 3, 1, 2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_region_is_fine() {
        let path = write_file("empty", 4, &[]);
        let v = MmapVectors::open(&path, 4, 0, 3).unwrap();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_bounds_checked() {
        let path = write_file("oob", 0, &[1.0, 2.0]);
        let v = MmapVectors::open(&path, 0, 1, 2).unwrap();
        std::fs::remove_file(&path).ok();
        v.row(1);
    }
}
