//! CAGRA — the paper's primary contribution, reimplemented in Rust.
//!
//! Two halves, mirroring the paper's structure:
//!
//! * **Graph construction** (Sec. III): build a `d_init`-degree k-NN
//!   graph with NN-Descent, then optimize it into a fixed-degree-`d`
//!   directed graph via rank-based edge reordering, pruning, reverse
//!   edge addition, and an interleaved merge. See [`build`] and
//!   [`optimize`].
//! * **Search** (Sec. IV): an iterative traversal over a contiguous
//!   buffer holding an internal top-M list and a `p x d` candidate
//!   list, with an open-addressing *visited* hash table (standard or
//!   "forgettable"), MSB-flag parent tracking, and two hardware
//!   mappings — [`search::single_cta`] (one worker per query, large
//!   batches) and [`search::multi_cta`] (several workers cooperating
//!   on one query). [`search::planner`] encodes the Fig. 7 dispatch
//!   rule.
//!
//! The GPU timing behaviour (team sizes, occupancy, memory
//! transactions) lives in the separate `gpu-sim` crate, which consumes
//! the [`search::trace::SearchTrace`] this crate records.
//!
//! ```
//! use cagra::{CagraIndex, GraphConfig, SearchParams};
//! use dataset::synth::{Family, SynthSpec};
//! use distance::Metric;
//!
//! let (base, queries) =
//!     SynthSpec { dim: 16, n: 500, queries: 1, family: Family::Gaussian, seed: 1 }.generate();
//! let (index, report) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(8));
//! assert!(report.total().as_nanos() > 0);
//! let hits = index.search(queries.row(0), 5, &SearchParams::for_k(5));
//! assert_eq!(hits.len(), 5);
//! ```

// See the workspace soundness policy (DESIGN.md "Soundness & analysis"):
// unsafe ops inside `unsafe fn` need their own `unsafe {}` + SAFETY.
// The only unsafe in this crate is the `mmap` module's file mapping
// (raw syscalls + borrowed slices over mapped pages), each block
// carrying its own SAFETY comment and counted in the analyze budget.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod dynamic;
pub mod error;
pub mod index_io;
pub mod mmap;
pub mod optimize;
pub mod params;
pub mod search;
pub mod shard;

pub use build::{build_graph, BuildReport, BuildStats, GraphConfig};
pub use dynamic::{DynamicIndex, DynamicParams, DynamicStats};
pub use error::SearchError;
pub use graph::relabel::{IdMap, Permutation, RelabelStrategy};
pub use mmap::MmapVectors;
pub use params::{HashPolicy, ReorderStrategy, SearchParams};
pub use search::index::CagraIndex;
pub use search::scratch::SearchScratch;
pub use shard::ShardedIndex;
