//! Implementation choice rule (Fig. 7 of the paper).
//!
//! Multi-CTA is selected when the batch is too small to fill the GPU
//! with one CTA per query (`batch < b_T`) or when the internal top-M
//! list is large enough that single-CTA's top-M update dominates
//! (`itopk > M_T`). The paper recommends `M_T = 512` and `b_T = number
//! of SMs` empirically.

use serde::{Deserialize, Serialize};

/// Which kernel mapping to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// One CTA per query — large batches.
    SingleCta,
    /// Many CTAs per query — small batches or large top-M.
    MultiCta,
}

/// Dispatch thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Thresholds {
    /// Batch-size threshold `b_T` (paper: the GPU's SM count).
    pub batch: usize,
    /// Internal top-M threshold `M_T` (paper: 512).
    pub itopk: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        // 108 SMs on the paper's A100 (80 GB).
        Thresholds { batch: 108, itopk: 512 }
    }
}

/// Apply the Fig. 7 rule.
pub fn choose(batch_size: usize, itopk: usize, t: Thresholds) -> Mode {
    if batch_size < t.batch || itopk > t.itopk {
        Mode::MultiCta
    } else {
        Mode::SingleCta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_goes_multi() {
        assert_eq!(choose(1, 64, Thresholds::default()), Mode::MultiCta);
    }

    #[test]
    fn large_batch_small_itopk_goes_single() {
        assert_eq!(choose(10_000, 64, Thresholds::default()), Mode::SingleCta);
    }

    #[test]
    fn large_itopk_forces_multi_even_for_large_batches() {
        assert_eq!(choose(10_000, 1024, Thresholds::default()), Mode::MultiCta);
    }

    #[test]
    fn boundary_conditions() {
        let t = Thresholds::default();
        // batch == b_T is "not smaller" -> single.
        assert_eq!(choose(t.batch, 64, t), Mode::SingleCta);
        assert_eq!(choose(t.batch - 1, 64, t), Mode::MultiCta);
        // itopk == M_T is "not larger" -> single.
        assert_eq!(choose(10_000, t.itopk, t), Mode::SingleCta);
        assert_eq!(choose(10_000, t.itopk + 1, t), Mode::MultiCta);
    }
}
