//! Implementation choice rule (Fig. 7 of the paper).
//!
//! Multi-CTA is selected when the batch is too small to fill the GPU
//! with one CTA per query (`batch < b_T`) or when the internal top-M
//! list is large enough that single-CTA's top-M update dominates
//! (`itopk > M_T`). The paper recommends `M_T = 512` and `b_T = number
//! of SMs` empirically.

use serde::{Deserialize, Serialize};

/// Which kernel mapping to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// One CTA per query — large batches.
    SingleCta,
    /// Many CTAs per query — small batches or large top-M.
    MultiCta,
}

/// Dispatch thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Thresholds {
    /// Batch-size threshold `b_T` (paper: the GPU's SM count).
    pub batch: usize,
    /// Internal top-M threshold `M_T` (paper: 512).
    pub itopk: usize,
}

impl Default for Thresholds {
    fn default() -> Self {
        // 108 SMs on the paper's A100 (80 GB).
        Thresholds { batch: 108, itopk: 512 }
    }
}

/// Apply the Fig. 7 rule.
pub fn choose(batch_size: usize, itopk: usize, t: Thresholds) -> Mode {
    if batch_size < t.batch || itopk > t.itopk {
        Mode::MultiCta
    } else {
        Mode::SingleCta
    }
}

/// The search configuration a *realized* batch should run with: the
/// Fig. 7 mapping plus a batch-size-aware `num_cta`. This is the
/// serving layer's config-selection helper — an online batcher does
/// not know its batch size until the dispatch moment, so the plan is
/// a pure function of (realized batch size, per-request params).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// Kernel mapping for this batch (Fig. 7 on the realized size).
    pub mode: Mode,
    /// Per-query CTA count to run with. Equal to the configured
    /// `num_cta` in single-CTA mode; in multi-CTA mode it is scaled so
    /// `batch_size x num_cta` stays near the device's CTA capacity
    /// (`Thresholds::batch`, the SM count) instead of oversubscribing
    /// small batches and starving large ones — the per-request-shape
    /// tuning FusionGPU applies to `max_queries`/`itopk`.
    pub num_cta: usize,
}

/// Plan a realized batch: mapping via [`choose`], then the multi-CTA
/// worker count scaled to the batch (floor 1, capped at the
/// configured `params_num_cta` so a plan never exceeds what the
/// request validated for).
pub fn plan(batch_size: usize, itopk: usize, params_num_cta: usize, t: Thresholds) -> BatchPlan {
    let mode = choose(batch_size, itopk, t);
    let num_cta = match mode {
        Mode::SingleCta => params_num_cta,
        Mode::MultiCta => (t.batch / batch_size.max(1)).clamp(1, params_num_cta),
    };
    BatchPlan { mode, num_cta }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_goes_multi() {
        assert_eq!(choose(1, 64, Thresholds::default()), Mode::MultiCta);
    }

    #[test]
    fn large_batch_small_itopk_goes_single() {
        assert_eq!(choose(10_000, 64, Thresholds::default()), Mode::SingleCta);
    }

    #[test]
    fn large_itopk_forces_multi_even_for_large_batches() {
        assert_eq!(choose(10_000, 1024, Thresholds::default()), Mode::MultiCta);
    }

    #[test]
    fn plan_scales_multi_cta_workers_to_the_batch() {
        let t = Thresholds::default();
        // A lone query gets the full configured worker count.
        assert_eq!(plan(1, 64, 16, t), BatchPlan { mode: Mode::MultiCta, num_cta: 16 });
        // Half the SM count queued: two CTAs each still fill the device.
        assert_eq!(plan(54, 64, 16, t), BatchPlan { mode: Mode::MultiCta, num_cta: 2 });
        // Near the crossover the scale bottoms out at one CTA.
        assert_eq!(plan(107, 64, 16, t), BatchPlan { mode: Mode::MultiCta, num_cta: 1 });
        // Past the crossover: single-CTA, num_cta passes through.
        assert_eq!(plan(200, 64, 16, t), BatchPlan { mode: Mode::SingleCta, num_cta: 16 });
        // Large itopk forces multi-CTA regardless of batch size.
        assert_eq!(plan(200, 1024, 16, t).mode, Mode::MultiCta);
        // The plan never exceeds the validated configuration.
        assert_eq!(plan(1, 64, 4, t).num_cta, 4);
    }

    #[test]
    fn boundary_conditions() {
        let t = Thresholds::default();
        // batch == b_T is "not smaller" -> single.
        assert_eq!(choose(t.batch, 64, t), Mode::SingleCta);
        assert_eq!(choose(t.batch - 1, 64, t), Mode::MultiCta);
        // itopk == M_T is "not larger" -> single.
        assert_eq!(choose(10_000, t.itopk, t), Mode::SingleCta);
        assert_eq!(choose(10_000, t.itopk + 1, t), Mode::MultiCta);
    }
}
