//! Reusable per-worker search state.
//!
//! Every search needs the same working set: a visited hash table, one
//! search buffer per worker (top-M list + candidate list), a parent
//! list, a result list, and a trace. Allocating these per query is
//! invisible for a single search but dominates small-query batch
//! throughput — the GPU kernels never allocate per query (all state
//! lives in registers/shared memory sized at launch), and the CPU
//! batch path mirrors that: each worker thread owns one
//! [`SearchScratch`] and recycles it across every query it serves, so
//! steady-state batch search performs **zero heap allocations per
//! query** beyond the returned result vector itself.
//!
//! [`SearchScratch::begin`] re-shapes the scratch for the next search;
//! when the shape matches the previous query (the common case inside a
//! batch) no allocation occurs — tables are `memset`, vectors are
//! `clear()`ed, and capacity is retained.

use super::buffer::SearchBuffer;
use super::hash::VisitedSet;
use super::trace::SearchTrace;
use knn::topk::Neighbor;

/// Reusable working state for one search worker thread.
///
/// Create once (cheap — everything starts empty), then pass to
/// [`crate::search::single_cta::search_single_cta_with`],
/// [`crate::search::multi_cta::search_multi_cta_with`], or
/// [`crate::CagraIndex::search_mode_with`] for as many queries as
/// desired. After each call, [`SearchScratch::results`] and
/// [`SearchScratch::trace`] hold that query's output until the next
/// search overwrites them.
#[derive(Clone, Debug, Default)]
pub struct SearchScratch {
    /// Visited hash table (lazily created on first use).
    pub(crate) visited: Option<VisitedSet>,
    /// One buffer per worker (single-CTA uses exactly one).
    pub(crate) buffers: Vec<SearchBuffer>,
    /// Multi-CTA per-worker liveness flags.
    pub(crate) active: Vec<bool>,
    /// Single-CTA parent list (up to `search_width` ids).
    pub(crate) parents: Vec<u32>,
    /// Staging buffer for batch queries gathered out of a store.
    pub(crate) query: Vec<f32>,
    /// Fresh (first-visit) node ids gathered during one parent
    /// expansion, scored in a single `DistanceOracle::to_rows` call.
    pub(crate) gang_ids: Vec<u32>,
    /// Candidate-segment positions matching `gang_ids`, where the
    /// batched distances are patched in.
    pub(crate) gang_pos: Vec<u32>,
    /// Output of the batched distance call (parallel to `gang_ids`).
    pub(crate) gang_dists: Vec<f32>,
    /// Results of the most recent search, ascending by distance.
    pub(crate) results: Vec<Neighbor>,
    /// Rerank staging: one full-precision row gathered from the rerank
    /// source (used only when the source has no borrowable rows).
    pub(crate) rerank_row: Vec<f32>,
    /// Rerank staging: the approximate top-k ids before re-scoring
    /// (drives the `search.rerank_promoted` counter).
    pub(crate) rerank_ids: Vec<u32>,
    /// Trace of the most recent search.
    pub(crate) trace: SearchTrace,
    /// When false, per-iteration trace entries are not recorded (the
    /// untraced batch path — keeps the steady state allocation-free
    /// and skips bookkeeping the caller will drop anyway). Aggregate
    /// counters (`init_distances`) are maintained either way.
    pub(crate) record_trace: bool,
    /// When true, searches additionally record the memory-access log
    /// ([`SearchTrace::accesses`]) consumed by `gpu-sim`'s transaction
    /// replay. Off by default: the log allocates per query.
    pub(crate) record_accesses: bool,
    /// Number of searches served (drives the `scratch_reused` flag).
    searches: u64,
}

impl SearchScratch {
    /// Fresh, empty scratch. No allocations happen until the first
    /// search shapes it.
    pub fn new() -> Self {
        SearchScratch { record_trace: true, ..Default::default() }
    }

    /// Enable or disable per-iteration trace recording (default on).
    pub fn set_record_trace(&mut self, record: bool) {
        self.record_trace = record;
    }

    /// Enable or disable memory-access logging (default off). When on,
    /// each search fills [`SearchTrace::accesses`] with the internal
    /// node ids it gathered, for `gpu-sim` transaction replay.
    pub fn set_record_accesses(&mut self, record: bool) {
        self.record_accesses = record;
    }

    /// Results of the most recent search.
    pub fn results(&self) -> &[Neighbor] {
        &self.results
    }

    /// Trace of the most recent search.
    pub fn trace(&self) -> &SearchTrace {
        &self.trace
    }

    /// True once the scratch has served more than one search — i.e.
    /// the most recent search ran on recycled state.
    pub fn reused(&self) -> bool {
        self.searches > 1
    }

    /// Consume the scratch, yielding the last search's output without
    /// copying (the one-shot convenience path).
    pub fn into_output(mut self) -> (Vec<Neighbor>, SearchTrace) {
        (std::mem::take(&mut self.results), std::mem::take(&mut self.trace))
    }

    /// Re-shape for the next search: a `2^bits`-slot visited table and
    /// `workers` buffers of top-M length `m` and candidate capacity
    /// `width`. Reuses every allocation whose size already matches;
    /// in a fixed-shape batch this is allocation-free after the first
    /// query. Trace metadata fields are left for the search routine to
    /// fill; `scratch_reused` reports whether this scratch has served
    /// a previous search.
    pub(crate) fn begin(&mut self, bits: u8, workers: usize, m: usize, width: usize) {
        match &mut self.visited {
            Some(v) => v.reset_to(bits),
            None => self.visited = Some(VisitedSet::new(bits)),
        }
        for buf in self.buffers.iter_mut().take(workers) {
            buf.reset(m, width);
        }
        while self.buffers.len() < workers {
            self.buffers.push(SearchBuffer::new(m, width));
        }
        self.buffers.truncate(workers);
        self.active.clear();
        self.active.resize(workers, true);
        self.parents.clear();
        self.gang_ids.clear();
        self.gang_pos.clear();
        self.gang_dists.clear();
        self.results.clear();
        // Reset the trace in place — never replace it wholesale, that
        // would discard the iterations vector's capacity.
        self.trace.init_distances = 0;
        self.trace.iterations.clear();
        self.trace.serial_queue = false;
        self.trace.scratch_reused = self.searches > 0;
        if self.record_accesses {
            // Reuse the log's allocations across queries.
            match &mut self.trace.accesses {
                Some(log) => {
                    log.init_scored.clear();
                    log.iterations.clear();
                }
                None => self.trace.accesses = Some(Default::default()),
            }
        } else {
            self.trace.accesses = None;
        }
        self.searches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_shapes_and_tracks_reuse() {
        let mut s = SearchScratch::new();
        assert!(!s.reused());
        s.begin(8, 4, 32, 16);
        assert_eq!(s.buffers.len(), 4);
        assert_eq!(s.active, vec![true; 4]);
        assert_eq!(s.visited.as_ref().unwrap().capacity(), 256);
        assert!(!s.trace.scratch_reused, "first search is not a reuse");
        assert!(!s.reused());
        // Second search: fewer workers, different table size.
        s.begin(6, 1, 64, 8);
        assert_eq!(s.buffers.len(), 1);
        assert_eq!(s.visited.as_ref().unwrap().capacity(), 64);
        assert!(s.trace.scratch_reused);
        assert!(s.reused());
    }

    #[test]
    fn begin_clears_previous_outputs() {
        let mut s = SearchScratch::new();
        s.begin(8, 1, 16, 8);
        s.results.push(Neighbor::new(1, 0.5));
        s.trace.init_distances = 9;
        s.trace.iterations.push(Default::default());
        s.begin(8, 1, 16, 8);
        assert!(s.results.is_empty());
        assert_eq!(s.trace.init_distances, 0);
        assert_eq!(s.trace.iteration_count(), 0);
    }

    #[test]
    fn into_output_moves_results() {
        let mut s = SearchScratch::new();
        s.begin(8, 1, 16, 8);
        s.results.push(Neighbor::new(7, 1.25));
        let (results, trace) = s.into_output();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 7);
        assert!(!trace.scratch_reused);
    }
}
