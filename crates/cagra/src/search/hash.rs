//! Open-addressing visited-node hash table (Sec. IV-B3).
//!
//! Tracks which nodes have already had their query distance computed,
//! in the manner of SONG: a power-of-two table of node ids probed
//! linearly. Two management modes mirror the paper:
//!
//! * **standard** — sized at construction for `2 * I_max * p * d`
//!   potential entries so collisions stay rare and the table never
//!   fills; the GPU keeps it in device memory.
//! * **forgettable** — a small table (2^8..2^13 entries, shared
//!   memory) that is periodically [`VisitedSet::reset`]; only the
//!   current top-M survivors are re-registered. Forgetting can cause
//!   re-computation of distances but, per the paper (and our Fig. 9
//!   runs), no catastrophic recall loss.

const EMPTY: u32 = u32::MAX;

/// Fixed-capacity open-addressing set of node ids.
#[derive(Clone, Debug)]
pub struct VisitedSet {
    slots: Vec<u32>,
    mask: u32,
    len: usize,
    /// Total probe steps performed (costing input for `gpu-sim`).
    probes: u64,
}

/// Multiplicative 32-bit hash (Knuth's 2^32 / phi constant).
#[inline]
fn hash(id: u32) -> u32 {
    id.wrapping_mul(0x9e37_79b1)
}

impl VisitedSet {
    /// Create a table of `2^bits` slots.
    ///
    /// # Panics
    /// Panics unless `4 <= bits <= 30`.
    pub fn new(bits: u8) -> Self {
        // ALLOW(panic): documented precondition (see `# Panics`).
        assert!((4..=30).contains(&bits), "hash bits {bits} out of range");
        let size = 1usize << bits;
        let v = VisitedSet { slots: vec![EMPTY; size], mask: (size - 1) as u32, len: 0, probes: 0 };
        v.check_shape();
        v
    }

    /// `debug_invariants` shadow: the linear-probe loops terminate
    /// because (a) the table is a power of two whose wrap mask is
    /// `size - 1`, so `(slot + 1) & mask` cycles through every slot,
    /// and (b) each loop is bounded by `capacity` steps. Verify (a)
    /// and the occupancy accounting that (b)'s full-table fallback
    /// relies on.
    #[inline]
    fn check_shape(&self) {
        #[cfg(feature = "debug_invariants")]
        {
            // ALLOW(panic): compiled only under `debug_invariants`.
            assert!(
                self.slots.len().is_power_of_two(),
                "probe invariant: table not a power of two"
            );
            // ALLOW(panic): compiled only under `debug_invariants`.
            assert_eq!(
                self.mask as usize,
                self.slots.len() - 1,
                "probe invariant: wrap mask does not match table size"
            );
            // ALLOW(panic): compiled only under `debug_invariants`.
            assert!(self.len <= self.slots.len(), "probe invariant: len exceeds capacity");
        }
    }

    /// Table size adequate for a standard (never-reset) search: at
    /// least twice `I_max * p * d` entries, as the paper recommends.
    pub fn standard_bits(max_iterations: usize, width: usize) -> u8 {
        let entries = 2 * max_iterations.max(1) * width.max(1);
        let bits = entries.next_power_of_two().trailing_zeros() as u8;
        bits.clamp(8, 30)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no ids are registered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative probe count.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Insert `id`; returns `true` if it was not present (i.e. the
    /// caller should compute its distance). A full table reports
    /// `false` ("already visited"), which is safe: it suppresses a
    /// distance computation, mirroring the bounded GPU probe loop.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        debug_assert_ne!(id, EMPTY, "EMPTY sentinel cannot be inserted");
        let mut slot = hash(id) & self.mask;
        let cap = self.slots.len();
        for _ in 0..cap {
            self.probes += 1;
            // ALLOW(panic): `slot` is masked by `size - 1` of the
            // power-of-two table, so it is always in bounds.
            let cur = self.slots[slot as usize];
            if cur == id {
                return false;
            }
            if cur == EMPTY {
                // ALLOW(panic): same masked in-bounds `slot` as above.
                self.slots[slot as usize] = id;
                self.len += 1;
                self.check_shape();
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
        // The bounded probe loop visited every slot without finding
        // `id` or a hole — only a genuinely full table can do that.
        #[cfg(feature = "debug_invariants")]
        // ALLOW(panic): compiled only under `debug_invariants`.
        assert_eq!(
            self.len, cap,
            "probe invariant: probe loop exhausted {cap} slots but only {} are occupied",
            self.len
        );
        false
    }

    /// Membership query without insertion.
    pub fn contains(&self, id: u32) -> bool {
        let mut slot = hash(id) & self.mask;
        for _ in 0..self.slots.len() {
            // ALLOW(panic): `slot` is masked by `size - 1` of the
            // power-of-two table, so it is always in bounds.
            let cur = self.slots[slot as usize];
            if cur == id {
                return true;
            }
            if cur == EMPTY {
                return false;
            }
            slot = (slot + 1) & self.mask;
        }
        false
    }

    /// Re-initialize for a fresh search at `2^bits` slots, reusing the
    /// existing allocation whenever the size matches (the scratch-reuse
    /// path: per-thread tables are recycled across a whole batch, so in
    /// steady state this is a `memset`, not an allocation).
    ///
    /// # Panics
    /// Panics unless `4 <= bits <= 30`.
    pub fn reset_to(&mut self, bits: u8) {
        // ALLOW(panic): documented precondition (see `# Panics`).
        assert!((4..=30).contains(&bits), "hash bits {bits} out of range");
        let size = 1usize << bits;
        if self.slots.len() == size {
            self.slots.fill(EMPTY);
        } else {
            self.slots.clear();
            self.slots.resize(size, EMPTY);
            self.mask = (size - 1) as u32;
        }
        self.len = 0;
        self.probes = 0;
        self.check_shape();
    }

    /// Forgettable-mode reset: evict everything, then re-register the
    /// given survivors (the paper re-registers the current top-M list).
    pub fn reset(&mut self, survivors: impl IntoIterator<Item = u32>) {
        self.slots.fill(EMPTY);
        self.len = 0;
        for id in survivors {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_semantics() {
        let mut v = VisitedSet::new(6);
        assert!(v.insert(10));
        assert!(!v.insert(10));
        assert!(v.insert(11));
        assert_eq!(v.len(), 2);
        assert!(v.contains(10));
        assert!(!v.contains(99));
    }

    #[test]
    fn matches_std_hashset_on_random_streams() {
        use std::collections::HashSet;
        let mut x = 7u64;
        let mut ours = VisitedSet::new(12);
        let mut std_set = HashSet::new();
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = ((x >> 33) as u32) % 3000;
            assert_eq!(ours.insert(id), std_set.insert(id), "id {id}");
        }
        assert_eq!(ours.len(), std_set.len());
    }

    #[test]
    fn full_table_reports_visited() {
        let mut v = VisitedSet::new(4); // 16 slots
        for id in 0..16 {
            assert!(v.insert(id));
        }
        assert!(!v.insert(100), "full table must refuse");
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn reset_keeps_only_survivors() {
        let mut v = VisitedSet::new(6);
        for id in 0..20 {
            v.insert(id);
        }
        v.reset([3, 7, 9]);
        assert_eq!(v.len(), 3);
        assert!(v.contains(3) && v.contains(7) && v.contains(9));
        assert!(!v.contains(5));
        // Forgotten ids can be inserted (and thus recomputed) again.
        assert!(v.insert(5));
    }

    #[test]
    fn standard_bits_gives_headroom() {
        // 64 iterations * width 32 = 2048 entries -> >= 4096 slots.
        let bits = VisitedSet::standard_bits(64, 32);
        assert!(1usize << bits >= 4096, "bits {bits}");
        // Paper's range floor: never below 2^8.
        assert!(VisitedSet::standard_bits(1, 1) >= 8);
    }

    #[test]
    fn probes_accumulate() {
        let mut v = VisitedSet::new(8);
        v.insert(1);
        v.insert(2);
        assert!(v.probes() >= 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bits_out_of_range_rejected() {
        VisitedSet::new(31);
    }

    #[test]
    fn reset_to_reuses_or_resizes() {
        let mut v = VisitedSet::new(6);
        for id in 0..30 {
            v.insert(id);
        }
        // Same size: contents and counters wiped, capacity kept.
        v.reset_to(6);
        assert_eq!(v.capacity(), 64);
        assert_eq!(v.len(), 0);
        assert_eq!(v.probes(), 0);
        assert!(!v.contains(3));
        assert!(v.insert(3));
        // Different size: table is re-shaped and still behaves.
        v.reset_to(8);
        assert_eq!(v.capacity(), 256);
        assert!(v.insert(1000));
        assert!(!v.insert(1000));
        v.reset_to(4);
        assert_eq!(v.capacity(), 16);
        assert!(v.is_empty());
    }
}
