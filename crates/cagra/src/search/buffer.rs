//! The CAGRA search buffer: internal top-M list + candidate list, and
//! the top-M update (step 1, Sec. IV-B2).
//!
//! Entries are `(distance, packed index)` pairs; the packed index
//! carries the parent flag in its MSB (see [`super::parent`]). The
//! candidate segment is sorted with a **bitonic network** — the same
//! network the GPU kernel runs in registers — and merged with the
//! already-sorted top-M list. Dummy entries carry `FLT_MAX` distance
//! and the `INVALID` index, so they sort last, exactly as the paper
//! initializes the list.

use super::parent::{node_id, INVALID};

/// One buffer slot: distance plus flagged node index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BufEntry {
    /// Query distance (`f32::MAX` for dummies / hash-suppressed nodes).
    pub dist: f32,
    /// Node id with MSB parent flag.
    pub packed: u32,
}

impl BufEntry {
    /// A dummy entry sorting after every real entry.
    pub const DUMMY: BufEntry = BufEntry { dist: f32::MAX, packed: INVALID };

    /// A fresh (unparented) entry.
    pub fn new(id: u32, dist: f32) -> Self {
        BufEntry { dist, packed: id }
    }

    /// Sort key: distance, node id (flag excluded so parenting never
    /// perturbs the order), NaN last.
    #[inline]
    fn key(&self) -> (f32, u32) {
        (self.dist, node_id(self.packed))
    }
}

#[inline]
fn less(a: &BufEntry, b: &BufEntry) -> bool {
    let (da, ia) = a.key();
    let (db, ib) = b.key();
    match da.partial_cmp(&db) {
        Some(std::cmp::Ordering::Less) => true,
        Some(std::cmp::Ordering::Greater) => false,
        Some(std::cmp::Ordering::Equal) => ia < ib,
        None => db.is_nan() && !da.is_nan(), // NaN sorts last
    }
}

/// Sort `entries` ascending in place with a bitonic network, padding
/// virtually to the next power of two (padding compares as DUMMY).
///
/// This mirrors the warp-level register sort of the CUDA kernel (used
/// when the candidate buffer is <= 512 entries); for larger buffers
/// the GPU switches to a radix sort, which is functionally identical,
/// so the host implementation keeps one code path.
pub fn bitonic_sort(entries: &mut [BufEntry]) {
    let n = entries.len();
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    // Virtual padding: out-of-range slots are DUMMY (max element), and
    // compare-exchange with them only matters in ascending direction,
    // where a real element never moves toward a higher index; so pairs
    // with j >= n can be skipped when ascending, and force-swapped
    // when descending. Simpler and still O(n log^2 n): materialize.
    let mut buf: Vec<BufEntry> = Vec::with_capacity(padded);
    buf.extend_from_slice(entries);
    buf.resize(padded, BufEntry::DUMMY);

    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    // ALLOW(panic): `i < padded` and `l = i ^ j` with
                    // `j < padded` (a power of two), so `l < padded`.
                    if less(&buf[l], &buf[i]) == ascending {
                        buf.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    // ALLOW(panic): `buf` was resized to `padded >= n` above.
    entries.copy_from_slice(&buf[..n]);
}

/// The contiguous search buffer (Fig. 6 top).
#[derive(Clone, Debug)]
pub struct SearchBuffer {
    /// Internal top-M list, always sorted ascending.
    topm: Vec<BufEntry>,
    /// Candidate list (`p * d` slots).
    candidates: Vec<BufEntry>,
    m: usize,
    scratch: Vec<BufEntry>,
}

impl SearchBuffer {
    /// Create a buffer with top-M length `m` and candidate capacity
    /// `width` (`p * d`). The top-M list starts as all dummies.
    pub fn new(m: usize, width: usize) -> Self {
        // ALLOW(panic): constructor precondition; zero-sized lists
        // have no meaningful search semantics.
        assert!(m > 0 && width > 0, "buffer sizes must be positive");
        SearchBuffer {
            topm: vec![BufEntry::DUMMY; m],
            candidates: Vec::with_capacity(width),
            m,
            scratch: Vec::with_capacity(m + width),
        }
    }

    /// Re-initialize for a fresh search with top-M length `m` and
    /// candidate capacity `width`, reusing the existing allocations.
    /// After `reset` the buffer is indistinguishable from
    /// [`SearchBuffer::new`]`(m, width)` except that, in steady state
    /// (same shape as the previous search), no heap allocation occurs.
    pub fn reset(&mut self, m: usize, width: usize) {
        // ALLOW(panic): same precondition as `new`.
        assert!(m > 0 && width > 0, "buffer sizes must be positive");
        self.m = m;
        self.topm.clear();
        self.topm.resize(m, BufEntry::DUMMY);
        self.candidates.clear();
        self.candidates.reserve(width);
        self.scratch.clear();
        self.scratch.reserve(m + width);
    }

    /// The sorted top-M list.
    pub fn topm(&self) -> &[BufEntry] {
        &self.topm
    }

    /// Mutable access (parent marking).
    pub fn topm_mut(&mut self) -> &mut [BufEntry] {
        &mut self.topm
    }

    /// Clear and refill the candidate segment.
    pub fn set_candidates(&mut self, iter: impl IntoIterator<Item = BufEntry>) {
        self.candidates.clear();
        self.candidates.extend(iter);
    }

    /// Drop all candidates, keeping the allocation.
    pub fn clear_candidates(&mut self) {
        self.candidates.clear();
    }

    /// Append one candidate (the allocation-free alternative to
    /// [`SearchBuffer::set_candidates`] for hot loops).
    #[inline]
    pub fn push_candidate(&mut self, entry: BufEntry) {
        self.candidates.push(entry);
    }

    /// Current candidate segment.
    pub fn candidates(&self) -> &[BufEntry] {
        &self.candidates
    }

    /// Mutable candidate segment. The expansion loop pushes every
    /// neighbor with a placeholder distance in adjacency order (the
    /// order feeds the bitonic sort's tie-breaking), then patches the
    /// first-visit entries from one batched distance call.
    #[inline]
    pub fn candidates_mut(&mut self) -> &mut [BufEntry] {
        &mut self.candidates
    }

    /// Step 1: sort the candidate list and merge it into the top-M
    /// list, keeping the M smallest. Returns the number of candidates
    /// that entered the list (a progress signal).
    pub fn update_topm(&mut self) -> usize {
        bitonic_sort(&mut self.candidates);
        self.scratch.clear();
        let mut ti = 0usize;
        let mut ci = 0usize;
        let mut admitted = 0usize;
        while self.scratch.len() < self.m {
            // Matching on the fetched entries (instead of re-indexing
            // after a take/skip decision) keeps the merge panic-free.
            match (self.topm.get(ti), self.candidates.get(ci)) {
                (Some(&t), Some(&c)) if less(&c, &t) => {
                    self.scratch.push(c);
                    ci += 1;
                    admitted += 1;
                }
                (_, Some(&c)) if ti >= self.topm.len() => {
                    self.scratch.push(c);
                    ci += 1;
                    admitted += 1;
                }
                (Some(&t), _) => {
                    self.scratch.push(t);
                    ti += 1;
                }
                _ => break,
            }
        }
        while self.scratch.len() < self.m {
            self.scratch.push(BufEntry::DUMMY);
        }
        std::mem::swap(&mut self.topm, &mut self.scratch);
        self.candidates.clear();
        // Dummies admitted from an undersized candidate list are not
        // progress.
        admitted
    }

    /// Ids of the real (non-dummy) top-M entries, flags stripped.
    pub fn topm_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.topm.iter().filter(|e| e.packed != INVALID).map(|e| node_id(e.packed))
    }

    /// Ids of the *live* top-M entries: non-dummy AND carrying a
    /// computed distance. Hash-suppressed placeholders sit at
    /// `dist == f32::MAX` with a real id; which of those survive in an
    /// underfull list is tie-broken by id, so any consumer that must
    /// stay invariant under vertex relabeling (the forgettable-hash
    /// reset re-seed) has to skip them and take only the entries whose
    /// position is determined by geometry.
    pub fn topm_live_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.topm
            .iter()
            .filter(|e| e.packed != INVALID && e.dist < f32::MAX)
            .map(|e| node_id(e.packed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::parent::set_parented;

    fn e(id: u32, dist: f32) -> BufEntry {
        BufEntry::new(id, dist)
    }

    #[test]
    fn bitonic_sorts_arbitrary_lengths() {
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 100, 257] {
            let mut x = 99u64;
            let mut v: Vec<BufEntry> = (0..n)
                .map(|i| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
                    e(i as u32, ((x >> 40) as f32) / 1e3)
                })
                .collect();
            let mut want = v.clone();
            want.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.packed.cmp(&b.packed)));
            bitonic_sort(&mut v);
            assert_eq!(v, want, "n = {n}");
        }
    }

    #[test]
    fn bitonic_sort_ignores_parent_flag_in_order() {
        let mut v = vec![BufEntry { dist: 2.0, packed: set_parented(7) }, e(3, 1.0)];
        bitonic_sort(&mut v);
        assert_eq!(node_id(v[0].packed), 3);
        assert!(super::super::parent::is_parented(v[1].packed), "flag preserved");
    }

    #[test]
    fn update_topm_keeps_m_smallest() {
        let mut b = SearchBuffer::new(3, 4);
        b.set_candidates([e(0, 4.0), e(1, 1.0), e(2, 3.0), e(3, 2.0)]);
        let admitted = b.update_topm();
        assert_eq!(admitted, 3);
        let ids: Vec<u32> = b.topm_ids().collect();
        assert_eq!(ids, vec![1, 3, 2]);
        // Second round: only better candidates displace.
        b.set_candidates([e(4, 0.5), e(5, 10.0)]);
        b.update_topm();
        let ids: Vec<u32> = b.topm_ids().collect();
        assert_eq!(ids, vec![4, 1, 3]);
    }

    #[test]
    fn dummies_fill_an_underfull_list() {
        let mut b = SearchBuffer::new(4, 2);
        b.set_candidates([e(9, 1.0)]);
        b.update_topm();
        assert_eq!(b.topm_ids().count(), 1);
        assert_eq!(b.topm()[3], BufEntry::DUMMY);
    }

    #[test]
    fn parent_flags_survive_update() {
        let mut b = SearchBuffer::new(2, 2);
        b.set_candidates([e(0, 1.0), e(1, 2.0)]);
        b.update_topm();
        b.topm_mut()[0].packed = set_parented(b.topm()[0].packed);
        b.set_candidates([e(2, 3.0)]);
        b.update_topm();
        assert!(super::super::parent::is_parented(b.topm()[0].packed));
    }

    #[test]
    fn max_dist_candidates_never_displace_real_entries() {
        let mut b = SearchBuffer::new(2, 2);
        b.set_candidates([e(0, 1.0), e(1, 2.0)]);
        b.update_topm();
        // Hash-suppressed candidates arrive as dist = MAX.
        b.set_candidates([BufEntry { dist: f32::MAX, packed: 5 }]);
        b.update_topm();
        let ids: Vec<u32> = b.topm_ids().collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_m_rejected() {
        SearchBuffer::new(0, 1);
    }

    #[test]
    fn reset_matches_fresh_buffer() {
        let mut reused = SearchBuffer::new(3, 4);
        reused.set_candidates([e(0, 4.0), e(1, 1.0), e(2, 3.0)]);
        reused.update_topm();
        // Re-shape to a different (m, width) and replay a search that a
        // fresh buffer also runs; results must match entry-for-entry.
        reused.reset(2, 3);
        let mut fresh = SearchBuffer::new(2, 3);
        for b in [&mut reused, &mut fresh] {
            b.clear_candidates();
            b.push_candidate(e(7, 2.0));
            b.push_candidate(e(8, 0.5));
            b.update_topm();
        }
        assert_eq!(reused.topm(), fresh.topm());
    }
}
