//! 1-bit parented-node management (Sec. IV-B4).
//!
//! The search must remember which top-M entries have already been used
//! as traversal parents. Instead of a second hash table, the paper
//! stores the flag in the most significant bit of the node index —
//! reading the flag is then a single mask, at the cost of halving the
//! addressable dataset size (2^31 - 1 nodes for u32 indices).

/// The MSB flag marking an entry as "already a parent".
pub const PARENT_FLAG: u32 = 1 << 31;

/// Maximum dataset size representable alongside the flag.
pub const MAX_DATASET_SIZE: usize = (PARENT_FLAG - 1) as usize;

/// Sentinel for an empty buffer slot (all bits set, never a valid id).
pub const INVALID: u32 = u32::MAX;

/// Extract the node id, dropping the flag.
#[inline]
pub fn node_id(packed: u32) -> u32 {
    packed & !PARENT_FLAG
}

/// True if the entry has served as a parent.
#[inline]
pub fn is_parented(packed: u32) -> bool {
    packed & PARENT_FLAG != 0
}

/// Mark the entry as a parent.
#[inline]
pub fn set_parented(packed: u32) -> u32 {
    packed | PARENT_FLAG
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        let id = 0x7fff_fffe;
        let p = set_parented(id);
        assert!(is_parented(p));
        assert_eq!(node_id(p), id);
        assert!(!is_parented(id));
        assert_eq!(node_id(id), id);
    }

    #[test]
    fn max_dataset_size_matches_paper() {
        // "the supported maximum size of the dataset is only 2^31 - 1"
        assert_eq!(MAX_DATASET_SIZE, (1usize << 31) - 1);
    }

    #[test]
    fn invalid_sentinel_is_flagged() {
        // INVALID reads as parented so dummies are never selected.
        assert!(is_parented(INVALID));
    }
}
