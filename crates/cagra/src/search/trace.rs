//! Execution traces: the per-iteration operation counts that the
//! `gpu-sim` crate converts into simulated GPU time.
//!
//! The search algorithm is functional — recall comes from the real
//! traversal — while timing is derived afterward from these counts, so
//! one search implementation serves both the CPU benchmarks (wall
//! clock) and the GPU model (simulated cycles).

use serde::{Deserialize, Serialize};

/// Counts for one search iteration (steps 1–3 of Fig. 6).
///
/// All counts are `u64` regardless of platform, so serialized traces
/// are portable and summation cannot overflow on 32-bit targets.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Candidate slots filled by the traversal step (`<= p * d`).
    pub candidates: u64,
    /// Distances actually computed (candidates passing the hash).
    pub distances_computed: u64,
    /// Hash probe steps performed this iteration.
    pub hash_probes: u64,
    /// Length of the candidate segment sorted in step 1.
    pub sort_len: u64,
    /// Whether the forgettable table was reset before this iteration.
    pub hash_reset: bool,
}

/// Internal-layout node ids touched during one iteration (or round,
/// for multi-CTA), recorded only when access logging is enabled.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IterAccess {
    /// Parents expanded: each costs one adjacency-row gather.
    pub parents: Vec<u32>,
    /// Nodes whose distances were computed: each costs one vector-row
    /// gather (hash-suppressed neighbors never load their vector).
    pub scored: Vec<u32>,
}

/// Chronological memory-access log of one search, in *internal*
/// (physical layout) node ids — the input to `gpu-sim`'s 128-bit
/// transaction replay, which is how relabeling strategies are compared
/// in simulated memory traffic. Off by default
/// ([`crate::SearchScratch::set_record_accesses`]) because the log
/// allocates per query.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AccessLog {
    /// Nodes scored during random initialization (vector-row gathers).
    pub init_scored: Vec<u32>,
    /// Per-iteration adjacency/vector gathers, in traversal order.
    pub iterations: Vec<IterAccess>,
}

/// Counts for one whole query search.
///
/// Event counts are `u64` (see [`IterationTrace`]); configuration
/// echoes (`itopk`, `degree`, ...) remain `usize` since they describe
/// in-memory shapes, not accumulated counts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SearchTrace {
    /// Distances computed for the random initialization step.
    pub init_distances: u64,
    /// Per-iteration counts, in order.
    pub iterations: Vec<IterationTrace>,
    /// Internal top-M length used.
    pub itopk: usize,
    /// Search width `p` (parents per iteration, per worker).
    pub search_width: usize,
    /// Graph degree `d`.
    pub degree: usize,
    /// Number of cooperating workers (1 for single-CTA).
    pub num_workers: usize,
    /// Hash table slot count.
    pub hash_slots: usize,
    /// True when the hash policy was forgettable (shared-memory
    /// resident in the GPU mapping).
    pub hash_in_shared: bool,
    /// True when the recording search maintains its candidate queue
    /// with serialized insertions (SONG-style bounded priority queue)
    /// rather than CAGRA's warp-wide bitonic sort+merge. The cost
    /// model prices the two differently — removing this serialization
    /// is one of CAGRA's kernel contributions (Sec. IV-B2).
    #[serde(default)]
    pub serial_queue: bool,
    /// True when the recording search ran on recycled per-thread
    /// scratch (zero steady-state allocations) rather than freshly
    /// allocated working state. Purely informational — results are
    /// bit-identical either way — but surfaced so QPS reports state
    /// which execution path produced them.
    #[serde(default)]
    pub scratch_reused: bool,
    /// Memory-access log (internal ids), present only when the search
    /// ran with access recording on.
    #[serde(default)]
    pub accesses: Option<AccessLog>,
}

impl SearchTrace {
    /// Total distance computations including initialization.
    pub fn total_distances(&self) -> u64 {
        self.init_distances + self.iterations.iter().map(|i| i.distances_computed).sum::<u64>()
    }

    /// Number of iterations executed.
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total hash probes.
    pub fn total_hash_probes(&self) -> u64 {
        self.iterations.iter().map(|i| i.hash_probes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_aggregate_iterations() {
        let t = SearchTrace {
            init_distances: 10,
            iterations: vec![
                IterationTrace {
                    candidates: 32,
                    distances_computed: 20,
                    hash_probes: 40,
                    sort_len: 32,
                    hash_reset: false,
                },
                IterationTrace {
                    candidates: 32,
                    distances_computed: 5,
                    hash_probes: 35,
                    sort_len: 32,
                    hash_reset: true,
                },
            ],
            ..Default::default()
        };
        assert_eq!(t.total_distances(), 35);
        assert_eq!(t.iteration_count(), 2);
        assert_eq!(t.total_hash_probes(), 75);
    }
}
