//! CAGRA search (Sec. IV of the paper).
//!
//! The functional algorithm is identical for both hardware mappings:
//! a contiguous buffer holds the internal top-M list and the `p x d`
//! candidate list; each iteration (1) merges sorted candidates into
//! the top-M list, (2) expands the neighbors of the best not-yet-
//! parented entries (tracked by an MSB flag on the stored index), and
//! (3) computes distances only for nodes passing the visited hash
//! table. [`single_cta`] maps one worker to a query; [`multi_cta`]
//! maps several cooperating workers (sharing the visited set) to one
//! query. [`planner`] picks between them per Fig. 7.

pub mod buffer;
pub mod hash;
pub mod index;
pub mod multi_cta;
pub mod parent;
pub mod planner;
pub mod scratch;
pub mod single_cta;
pub mod trace;
