//! High-level index: build once, search many times.
//!
//! [`CagraIndex`] owns the dataset and graph and exposes the public
//! API a downstream user works with: single-query search (auto-
//! dispatched per Fig. 7), explicit-mode search, and thread-parallel
//! batch search (the CPU analogue of launching one CTA per query).

use super::multi_cta::search_multi_cta_mapped;
use super::planner::{choose, Mode, Thresholds};
use super::scratch::SearchScratch;
use super::single_cta::search_single_cta_mapped;
use super::trace::SearchTrace;
use crate::build::{build_graph, BuildReport, GraphConfig};
use crate::error::{validate_request, SearchError};
use crate::params::SearchParams;
use dataset::{PermutableStore, VectorStore};
use distance::Metric;
use graph::relabel::{self, IdMap, RelabelStrategy};
use graph::FixedDegreeGraph;
use knn::parallel::{default_threads, parallel_map_with};
use knn::topk::Neighbor;

/// A built CAGRA index over an owned vector store.
pub struct CagraIndex<S> {
    store: S,
    graph: FixedDegreeGraph,
    metric: Metric,
    /// Present when the index was relabeled for memory locality: the
    /// graph and store rows live in a permuted internal numbering, and
    /// this map translates ids at the search boundary.
    id_map: Option<IdMap>,
    /// Full-precision rows for the two-phase exact rerank, in
    /// **original** id order (see [`CagraIndex::set_rerank_store`]).
    /// `None` until attached; required when `rerank_depth > 0`.
    rerank: Option<Box<dyn VectorStore + Send + Sync>>,
    /// Dispatch thresholds used by [`CagraIndex::search_batch`].
    pub thresholds: Thresholds,
}

impl<S: VectorStore> CagraIndex<S> {
    /// Build a new index (NN-Descent + CAGRA optimization).
    pub fn build(store: S, metric: Metric, config: &GraphConfig) -> (Self, BuildReport) {
        let (graph, report) = build_graph(&store, metric, config);
        (
            CagraIndex {
                store,
                graph,
                metric,
                id_map: None,
                rerank: None,
                thresholds: Thresholds::default(),
            },
            report,
        )
    }

    /// Wrap an already-built graph (e.g. deserialized with
    /// `graph::io::read_fixed`), rejecting mismatched sizes.
    pub fn try_new(store: S, graph: FixedDegreeGraph, metric: Metric) -> Result<Self, SearchError> {
        if store.len() != graph.len() {
            return Err(SearchError::SizeMismatch { store: store.len(), graph: graph.len() });
        }
        Ok(CagraIndex {
            store,
            graph,
            metric,
            id_map: None,
            rerank: None,
            thresholds: Thresholds::default(),
        })
    }

    /// Wrap an already-built graph (e.g. deserialized with
    /// `graph::io::read_fixed`).
    ///
    /// # Panics
    /// Panics if graph and store sizes disagree; [`CagraIndex::try_new`]
    /// is the non-panicking form.
    pub fn from_parts(store: S, graph: FixedDegreeGraph, metric: Metric) -> Self {
        Self::try_new(store, graph, metric).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Wrap an already-relabeled graph/store pair together with the
    /// [`IdMap`] that translates back to original ids (the bundle
    /// loader's entry point).
    ///
    /// # Panics
    /// Panics if graph, store, and map sizes disagree.
    pub fn from_parts_mapped(
        store: S,
        graph: FixedDegreeGraph,
        metric: Metric,
        id_map: Option<IdMap>,
    ) -> Self {
        let mut index = Self::from_parts(store, graph, metric);
        if let Some(m) = &id_map {
            assert_eq!(m.len(), index.graph.len(), "id map and graph sizes differ");
        }
        index.id_map = id_map;
        index
    }

    /// The proximity graph.
    pub fn graph(&self) -> &FixedDegreeGraph {
        &self.graph
    }

    /// The vector store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The locality id map, if the index has been relabeled.
    pub fn id_map(&self) -> Option<&IdMap> {
        self.id_map.as_ref()
    }

    /// The metric the index was built with.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Attach a full-precision rerank source, enabling two-phase
    /// search (`SearchParams::rerank_depth > 0`): traversal under the
    /// store's — possibly approximate, e.g. PQ/ADC — distances, then
    /// an exact re-score of the top candidates against this source.
    ///
    /// Rows must be in **original** id order. Search results carry
    /// original ids (any locality relabel is undone at the output
    /// boundary), so the rerank pass reads `source` rows by result id
    /// directly — no permutation bookkeeping — and a later
    /// [`CagraIndex::relabel`] leaves the source untouched.
    ///
    /// # Panics
    /// Panics if the source's shape differs from the index.
    pub fn set_rerank_store(&mut self, source: Box<dyn VectorStore + Send + Sync>) {
        assert_eq!(source.len(), self.store.len(), "rerank source/store size mismatch");
        assert_eq!(source.dim(), self.store.dim(), "rerank source/store dimension mismatch");
        self.rerank = Some(source);
    }

    /// The attached full-precision rerank source, if any.
    pub fn rerank_store(&self) -> Option<&(dyn VectorStore + Send + Sync)> {
        self.rerank.as_deref()
    }

    /// Reject `rerank_depth > 0` when no rerank source is attached —
    /// part of every validated entry point's admission gate.
    fn check_rerank(&self, params: &SearchParams) -> Result<(), SearchError> {
        if params.rerank_depth > 0 && self.rerank.is_none() {
            return Err(SearchError::RerankWithoutSource);
        }
        Ok(())
    }

    /// Validate a request *shape* — `(k, query_dim, params)` against
    /// this index — without running a search. The serving layer calls
    /// this once per distinct shape at admission time and then uses
    /// the validation-free [`CagraIndex::search_mode_with`] on the hot
    /// dispatch path, so a malformed request is rejected before it can
    /// enter a batch (and validation is not re-run per dispatch).
    pub fn validate_shape(
        &self,
        query_dim: usize,
        k: usize,
        params: &SearchParams,
    ) -> Result<(), SearchError> {
        validate_request(params, k, self.store.len(), self.store.dim(), query_dim)?;
        self.check_rerank(params)
    }

    /// Single-query search with automatic mapping choice (a lone query
    /// always dispatches to multi-CTA, as in the paper).
    ///
    /// # Panics
    /// Panics on invalid input; [`CagraIndex::try_search`] is the
    /// non-panicking form.
    pub fn search(&self, query: &[f32], k: usize, params: &SearchParams) -> Vec<Neighbor> {
        // ALLOW(panic): documented panicking wrapper; `try_search` is
        // the typed-error form.
        self.try_search(query, k, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CagraIndex::search`]: every invalid input
    /// (dimension mismatch, `k == 0`, `k > itopk`, `k > n`, bad knob
    /// values) comes back as a typed [`SearchError`].
    pub fn try_search(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>, SearchError> {
        let mode = choose(1, params.itopk, self.thresholds);
        Ok(self.try_search_mode(query, k, params, mode)?.0)
    }

    /// Search with an explicit kernel mapping; returns the trace too.
    ///
    /// # Panics
    /// Panics on invalid input; [`CagraIndex::try_search_mode`] is the
    /// non-panicking form.
    pub fn search_mode(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> (Vec<Neighbor>, SearchTrace) {
        // ALLOW(panic): documented panicking wrapper; `try_search_mode`
        // is the typed-error form.
        self.try_search_mode(query, k, params, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CagraIndex::search_mode`].
    pub fn try_search_mode(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Result<(Vec<Neighbor>, SearchTrace), SearchError> {
        validate_request(params, k, self.store.len(), self.store.dim(), query.len())?;
        self.check_rerank(params)?;
        let mut scratch = SearchScratch::new();
        self.search_mode_with(query, k, params, mode, &mut scratch);
        Ok(scratch.into_output())
    }

    /// [`CagraIndex::search_mode`] running on caller-provided scratch:
    /// results land in [`SearchScratch::results`], the trace in
    /// [`SearchScratch::trace`]. Reusing one scratch across queries
    /// performs zero heap allocations per query in steady state; the
    /// batch entry points hold one scratch per worker thread and call
    /// this for every query the thread serves.
    pub fn search_mode_with(
        &self,
        query: &[f32],
        k: usize,
        params: &SearchParams,
        mode: Mode,
        scratch: &mut SearchScratch,
    ) {
        let clock = obs::Stopwatch::start();
        let id_map = self.id_map.as_ref();
        // Two-phase: traverse for the top max(k, r) candidates under
        // the store's (possibly approximate) distances, then exactly
        // re-score them against the rerank source. On this unchecked
        // path, depth > 0 without a source degrades to single-phase —
        // the validated entry points reject that combination up front.
        let rerank = if params.rerank_depth > 0 { self.rerank.as_deref() } else { None };
        let k_eff = match rerank {
            Some(_) => params.rerank_depth.max(k).min(params.itopk).min(self.store.len()),
            None => k,
        };
        match mode {
            Mode::SingleCta => search_single_cta_mapped(
                &self.graph,
                &self.store,
                self.metric,
                query,
                k_eff,
                params,
                scratch,
                id_map,
            ),
            Mode::MultiCta => search_multi_cta_mapped(
                &self.graph,
                &self.store,
                self.metric,
                query,
                k_eff,
                params,
                scratch,
                id_map,
            ),
        }
        if let Some(src) = rerank {
            self.rerank_results(query, k, src, scratch);
        }
        let m = obs::metrics();
        m.search_queries.inc();
        m.search_latency_ns.record(clock.elapsed_ns());
    }

    /// Phase two: exactly re-score the candidates in `scratch.results`
    /// against the full-precision source and keep the best `k`.
    /// Candidate ids are original ids — exactly the source's row order
    /// — so no id translation happens here. Uses the same kernel entry
    /// points as a plain f32 oracle, so the kept distances are
    /// bit-identical to what an uncompressed index would report.
    fn rerank_results(
        &self,
        query: &[f32],
        k: usize,
        src: &dyn VectorStore,
        scratch: &mut SearchScratch,
    ) {
        let clock = obs::Stopwatch::start();
        let depth = scratch.results.len();
        // Remember the approximate top-k to count promotions.
        let mut approx = std::mem::take(&mut scratch.rerank_ids);
        approx.clear();
        approx.extend(scratch.results.iter().take(k).map(|n| n.id));
        let mut row = std::mem::take(&mut scratch.rerank_row);
        row.resize(src.dim(), 0.0);
        // Hoist the query norm once, as the oracle's prepare() does.
        let qnorm = match self.metric {
            Metric::Cosine => distance::dot(query, query).sqrt(),
            _ => 0.0,
        };
        for nb in scratch.results.iter_mut() {
            let r: &[f32] = match src.row_f32(nb.id as usize) {
                Some(r) => r,
                None => {
                    src.get_into(nb.id as usize, &mut row);
                    &row
                }
            };
            nb.dist = match self.metric {
                Metric::SquaredL2 => distance::squared_l2(query, r),
                Metric::InnerProduct => -distance::dot(query, r),
                Metric::Cosine => distance::cosine_from_parts(qnorm, distance::dot_norm(query, r)),
            };
        }
        scratch.results.sort_unstable_by(knn::topk::cmp_neighbor);
        scratch.results.truncate(k);
        let promoted = scratch.results.iter().filter(|n| !approx.contains(&n.id)).count();
        scratch.rerank_row = row;
        scratch.rerank_ids = approx;
        let m = obs::metrics();
        m.search_rerank_queries.inc();
        m.search_rerank_promoted.add(promoted as u64);
        m.search_rerank_depth.record(depth as u64);
        m.search_rerank_latency_ns.record(clock.elapsed_ns());
    }

    /// Batch search, parallel over queries, mapping chosen per Fig. 7
    /// from the batch size. Each query derives its own seed so batches
    /// are deterministic regardless of thread count.
    ///
    /// # Panics
    /// Panics on invalid input; [`CagraIndex::try_search_batch`] is the
    /// non-panicking form.
    pub fn search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
    ) -> Vec<Vec<Neighbor>> {
        self.try_search_batch(queries, k, params).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CagraIndex::search_batch`].
    pub fn try_search_batch<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>, SearchError> {
        let mode = choose(queries.len(), params.itopk, self.thresholds);
        self.try_search_batch_mode(queries, k, params, mode)
    }

    /// Batch search with an explicit mapping.
    ///
    /// Each worker thread creates one [`SearchScratch`] and recycles
    /// it across every query it serves, so the steady state performs
    /// zero heap allocations per query beyond the returned per-query
    /// result vectors. Results are identical to running
    /// [`CagraIndex::search_mode`] per query with
    /// [`SearchParams::seed_for_query`] seeds, regardless of thread
    /// count.
    ///
    /// # Panics
    /// Panics on invalid input; [`CagraIndex::try_search_batch_mode`]
    /// is the non-panicking form.
    pub fn search_batch_mode<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Vec<Vec<Neighbor>> {
        self.try_search_batch_mode(queries, k, params, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CagraIndex::search_batch_mode`].
    pub fn try_search_batch_mode<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Result<Vec<Vec<Neighbor>>, SearchError> {
        validate_request(params, k, self.store.len(), self.store.dim(), queries.dim())?;
        self.check_rerank(params)?;
        obs::metrics().search_batches.inc();
        Ok(parallel_map_with(
            queries.len(),
            default_threads(),
            || {
                let mut scratch = SearchScratch::new();
                // Untraced batch: skip per-iteration records so the
                // steady state stays allocation-free.
                scratch.set_record_trace(false);
                scratch
            },
            |scratch, qi| {
                self.batch_query_into(queries, qi, k, params, mode, scratch);
                scratch.results().to_vec()
            },
        ))
    }

    /// Batch search that also returns traces (experiment harness use).
    ///
    /// # Panics
    /// Panics on invalid input; [`CagraIndex::try_search_batch_traced`]
    /// is the non-panicking form.
    pub fn search_batch_traced<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Vec<(Vec<Neighbor>, SearchTrace)> {
        self.try_search_batch_traced(queries, k, params, mode).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`CagraIndex::search_batch_traced`].
    pub fn try_search_batch_traced<Q: VectorStore>(
        &self,
        queries: &Q,
        k: usize,
        params: &SearchParams,
        mode: Mode,
    ) -> Result<Vec<(Vec<Neighbor>, SearchTrace)>, SearchError> {
        validate_request(params, k, self.store.len(), self.store.dim(), queries.dim())?;
        self.check_rerank(params)?;
        obs::metrics().search_batches.inc();
        Ok(parallel_map_with(
            queries.len(),
            default_threads(),
            SearchScratch::new,
            |scratch, qi| {
                self.batch_query_into(queries, qi, k, params, mode, scratch);
                (scratch.results().to_vec(), scratch.trace().clone())
            },
        ))
    }

    /// Run batch query `qi` on `scratch`: stage the query vector into
    /// the scratch's recycled buffer, derive the per-query seed, and
    /// search. Output stays in the scratch.
    fn batch_query_into<Q: VectorStore>(
        &self,
        queries: &Q,
        qi: usize,
        k: usize,
        params: &SearchParams,
        mode: Mode,
        scratch: &mut SearchScratch,
    ) {
        // Take the staging buffer out so the query slice and the
        // scratch can be borrowed simultaneously.
        let mut q = std::mem::take(&mut scratch.query);
        q.resize(queries.dim(), 0.0);
        queries.get_into(qi, &mut q);
        let mut p = *params;
        p.seed = params.seed_for_query(qi);
        self.search_mode_with(&q, k, &p, mode, scratch);
        scratch.query = q;
    }
}

impl<S: VectorStore + PermutableStore> CagraIndex<S> {
    /// Build and then relabel for memory locality in one step,
    /// recording the relabel time in the report's stage breakdown.
    pub fn build_with_relabel(
        store: S,
        metric: Metric,
        config: &GraphConfig,
        strategy: RelabelStrategy,
    ) -> (Self, BuildReport) {
        let (mut index, mut report) = Self::build(store, metric, config);
        let t = std::time::Instant::now();
        index.relabel(strategy);
        report.stats.relabel = t.elapsed();
        report.opt_time += report.stats.relabel;
        (index, report)
    }

    /// Renumber the vertices with `strategy`, jointly permuting the
    /// adjacency rows and the vector-store rows and installing (or
    /// composing with) the [`IdMap`] so searches keep returning
    /// original ids — bit-identical results, different memory layout.
    ///
    /// `Identity` on a never-relabeled index is a no-op and leaves the
    /// index unmapped.
    pub fn relabel(&mut self, strategy: RelabelStrategy) {
        let perm = relabel::compute_fixed(&self.graph, strategy);
        if perm.is_identity() {
            // No layout change: keep any existing map (and its
            // strategy tag) untouched, so a persisted map's strategy
            // is never `Identity` — the bundle format relies on that.
            return;
        }
        self.graph = relabel::apply_to_fixed(&self.graph, &perm);
        self.store = self.store.permuted(perm.old_of_new_slice());
        // Compose: an existing map already translates original →
        // internal; the new permutation renumbers internal → internal.
        self.id_map = Some(match self.id_map.take() {
            Some(prev) => IdMap { perm: prev.perm.then(&perm), strategy },
            None => IdMap { perm, strategy },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::ground_truth;

    fn build_index(n: usize) -> (CagraIndex<dataset::Dataset>, dataset::Dataset) {
        let spec = SynthSpec { dim: 8, n, queries: 50, family: Family::Gaussian, seed: 21 };
        let (base, queries) = spec.generate();
        let (index, _) = CagraIndex::build(base, Metric::SquaredL2, &GraphConfig::new(16));
        (index, queries)
    }

    #[test]
    fn batch_search_reaches_high_recall() {
        let (index, queries) = build_index(2000);
        let got = index.search_batch(&queries, 10, &SearchParams::for_k(10));
        let gt = ground_truth(index.store(), Metric::SquaredL2, &queries, 10);
        let mut hits = 0usize;
        for (g, t) in got.iter().zip(&gt) {
            let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
            hits += g.iter().filter(|n| ts.contains(&n.id)).count();
        }
        let recall = hits as f64 / (gt.len() * 10) as f64;
        assert!(recall > 0.9, "batch recall@10 = {recall}");
    }

    #[test]
    fn batch_results_stable_across_thread_counts() {
        let (index, queries) = build_index(800);
        let p = SearchParams::for_k(5);
        std::env::set_var("CAGRA_THREADS", "1");
        let a = index.search_batch(&queries, 5, &p);
        std::env::set_var("CAGRA_THREADS", "3");
        let b = index.search_batch(&queries, 5, &p);
        std::env::remove_var("CAGRA_THREADS");
        assert_eq!(a, b);
    }

    #[test]
    fn single_query_uses_multi_cta_mapping() {
        let (index, queries) = build_index(500);
        let p = SearchParams::for_k(5);
        let auto = index.search(queries.row(0), 5, &p);
        let (multi, _) = index.search_mode(queries.row(0), 5, &p, Mode::MultiCta);
        assert_eq!(auto, multi);
    }

    #[test]
    fn validate_shape_matches_try_search_acceptance() {
        let (index, queries) = build_index(300);
        let p = SearchParams::for_k(5);
        assert_eq!(index.validate_shape(queries.dim(), 5, &p), Ok(()));
        assert_eq!(index.validate_shape(queries.dim(), 0, &p), Err(SearchError::ZeroK));
        assert_eq!(
            index.validate_shape(3, 5, &p),
            Err(SearchError::DimMismatch { expected: 8, got: 3 })
        );
        assert_eq!(
            index.validate_shape(queries.dim(), 301, &p),
            Err(SearchError::KExceedsItopk { k: 301, itopk: p.itopk })
        );
    }

    #[test]
    fn from_parts_round_trip() {
        let (index, queries) = build_index(300);
        let mut buf = Vec::new();
        graph::io::write_fixed(&mut buf, index.graph()).unwrap();
        let g2 = graph::io::read_fixed(&buf[..]).unwrap();
        let store2 =
            dataset::Dataset::from_flat(index.store().as_flat().to_vec(), index.store().dim());
        let index2 = CagraIndex::from_parts(store2, g2, Metric::SquaredL2);
        let p = SearchParams::for_k(5);
        assert_eq!(index.search(queries.row(1), 5, &p), index2.search(queries.row(1), 5, &p));
    }

    fn clone_of(index: &CagraIndex<dataset::Dataset>) -> CagraIndex<dataset::Dataset> {
        let store =
            dataset::Dataset::from_flat(index.store().as_flat().to_vec(), index.store().dim());
        CagraIndex::from_parts(store, index.graph().clone(), index.metric())
    }

    #[test]
    fn relabel_preserves_batch_results_bit_exactly() {
        let (index, queries) = build_index(800);
        let mut p = SearchParams::for_k(5);
        // Standard hash: the forgettable reset's topm re-registration
        // can be id-dependent at the boundary (see DESIGN.md).
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search_batch(&queries, 5, &p);
        for strategy in [RelabelStrategy::Degree, RelabelStrategy::Rcm, RelabelStrategy::Gorder] {
            let mut relabeled = clone_of(&index);
            relabeled.relabel(strategy);
            assert_eq!(relabeled.id_map().map(|m| m.strategy), Some(strategy));
            assert_eq!(
                relabeled.search_batch(&queries, 5, &p),
                baseline,
                "strategy {strategy:?} changed results"
            );
        }
    }

    #[test]
    fn identity_relabel_is_a_no_op() {
        let (index, _) = build_index(300);
        let mut idx = clone_of(&index);
        idx.relabel(RelabelStrategy::Identity);
        assert!(idx.id_map().is_none());
    }

    #[test]
    fn repeated_relabel_composes() {
        let (index, queries) = build_index(500);
        let mut p = SearchParams::for_k(5);
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search_batch(&queries, 5, &p);
        let mut idx = clone_of(&index);
        idx.relabel(RelabelStrategy::Degree);
        idx.relabel(RelabelStrategy::Rcm);
        assert_eq!(idx.id_map().map(|m| m.strategy), Some(RelabelStrategy::Rcm));
        assert_eq!(idx.search_batch(&queries, 5, &p), baseline);
    }

    #[test]
    fn from_parts_mapped_round_trips_the_map() {
        let (index, queries) = build_index(400);
        let mut p = SearchParams::for_k(5);
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search_batch(&queries, 5, &p);
        let mut relabeled = clone_of(&index);
        relabeled.relabel(RelabelStrategy::Rcm);
        let store2 = dataset::Dataset::from_flat(
            relabeled.store().as_flat().to_vec(),
            relabeled.store().dim(),
        );
        let rebuilt = CagraIndex::from_parts_mapped(
            store2,
            relabeled.graph().clone(),
            relabeled.metric(),
            relabeled.id_map().cloned(),
        );
        assert_eq!(rebuilt.search_batch(&queries, 5, &p), baseline);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_parts_checks_sizes() {
        let (index, _) = build_index(300);
        let store = dataset::Dataset::from_flat(vec![0.0; 8], 8);
        let g = index.graph().clone();
        CagraIndex::from_parts(store, g, Metric::SquaredL2);
    }

    #[test]
    fn rerank_without_source_rejected_and_accepted_with_one() {
        let (mut index, queries) = build_index(300);
        let mut p = SearchParams::for_k(5);
        p.rerank_depth = 20;
        assert_eq!(index.try_search(queries.row(0), 5, &p), Err(SearchError::RerankWithoutSource));
        assert_eq!(
            index.validate_shape(queries.dim(), 5, &p),
            Err(SearchError::RerankWithoutSource)
        );
        let copy =
            dataset::Dataset::from_flat(index.store().as_flat().to_vec(), index.store().dim());
        index.set_rerank_store(Box::new(copy));
        assert_eq!(index.validate_shape(queries.dim(), 5, &p), Ok(()));
        assert_eq!(index.try_search(queries.row(0), 5, &p).unwrap().len(), 5);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rerank_source_shape_checked() {
        let (mut index, _) = build_index(300);
        index.set_rerank_store(Box::new(dataset::Dataset::from_flat(vec![0.0; 8], 8)));
    }

    #[test]
    fn rerank_over_exact_store_returns_the_same_top_k() {
        // With an f32 store the traversal distances are already exact,
        // so phase two re-scores with bit-identical values and the
        // final top-k must match single-phase search exactly.
        let (mut index, queries) = build_index(800);
        let mut p = SearchParams::for_k(10);
        p.hash = crate::params::HashPolicy::Standard;
        let baseline = index.search_batch(&queries, 10, &p);
        let copy =
            dataset::Dataset::from_flat(index.store().as_flat().to_vec(), index.store().dim());
        index.set_rerank_store(Box::new(copy));
        p.rerank_depth = 40;
        assert_eq!(index.search_batch(&queries, 10, &p), baseline);
    }

    #[test]
    fn pq_rerank_reports_exact_distances_and_lifts_recall() {
        use dataset::pq::{self, PqConfig};
        let spec = SynthSpec { dim: 16, n: 1500, queries: 40, family: Family::Gaussian, seed: 9 };
        let (base, queries) = spec.generate();
        let pq_store = pq::build(&base, &PqConfig::new(4));
        let (graph, _) = crate::build::build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
        let mut index = CagraIndex::from_parts(pq_store, graph, Metric::SquaredL2);
        let mut p = SearchParams::for_k(10);
        p.itopk = 128;
        let approx = index.search_batch(&queries, 10, &p);
        index.set_rerank_store(Box::new(dataset::Dataset::from_flat(
            base.as_flat().to_vec(),
            base.dim(),
        )));
        p.rerank_depth = 64;
        let reranked = index.search_batch(&queries, 10, &p);
        // Reranked distances are the true f32 distances of the ids.
        for (qi, hits) in reranked.iter().enumerate() {
            assert_eq!(hits.len(), 10);
            for nb in hits {
                let want = Metric::SquaredL2.distance(queries.row(qi), base.row(nb.id as usize));
                assert_eq!(nb.dist, want, "query {qi} id {}", nb.id);
            }
        }
        // Recall@10 with rerank must beat (or tie) raw PQ traversal.
        let gt = ground_truth(&base, Metric::SquaredL2, &queries, 10);
        let recall = |got: &[Vec<knn::topk::Neighbor>]| {
            let mut hits = 0usize;
            for (g, t) in got.iter().zip(&gt) {
                let ts: std::collections::HashSet<u32> = t.iter().copied().collect();
                hits += g.iter().filter(|n| ts.contains(&n.id)).count();
            }
            hits as f64 / (gt.len() * 10) as f64
        };
        let (r_pq, r_rr) = (recall(&approx), recall(&reranked));
        assert!(r_rr >= r_pq, "rerank lowered recall: {r_pq} -> {r_rr}");
        assert!(r_rr > 0.9, "reranked recall@10 = {r_rr}");
    }
}
