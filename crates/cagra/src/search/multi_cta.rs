//! Multi-CTA search: several workers cooperate on one query
//! (Sec. IV-C2).
//!
//! Each simulated CTA runs the standard search loop with `p = 1` over
//! its own top-M list and candidate list, while all CTAs of a query
//! share one standard visited hash table (device memory on the GPU).
//! Because the shared table admits each node exactly once, the workers
//! partition the explored region; per iteration the query examines up
//! to `num_cta * d` nodes versus `p * d` for single-CTA, which is why
//! this mapping reaches higher recall for the same iteration count and
//! keeps the GPU busy at batch sizes as small as 1.

use super::buffer::BufEntry;
use super::hash::VisitedSet;
use super::parent::{is_parented, node_id, set_parented, INVALID};
use super::scratch::SearchScratch;
use super::trace::{IterAccess, IterationTrace, SearchTrace};
use crate::params::SearchParams;
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use graph::relabel::IdMap;
use graph::FixedDegreeGraph;
use knn::topk::{cmp_neighbor, Neighbor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-CTA top-M length: the paper splits the search across CTAs with
/// small per-CTA lists; 32 matches the cuVS implementation's floor.
fn per_cta_itopk(itopk: usize, num_cta: usize) -> usize {
    (itopk.div_ceil(num_cta)).max(32)
}

/// Search with `params.num_cta` cooperating workers.
///
/// Returns ascending-distance results and a trace whose
/// `num_workers` field reflects the CTA count (each iteration entry
/// aggregates one *round* of all active workers). One-shot wrapper
/// over [`search_multi_cta_with`]; batch callers should reuse a
/// [`SearchScratch`] per worker thread instead.
pub fn search_multi_cta<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchTrace) {
    let mut scratch = SearchScratch::new();
    search_multi_cta_with(graph, store, metric, query, k, params, &mut scratch);
    scratch.into_output()
}

/// [`search_multi_cta`] running entirely on caller-provided scratch
/// (one visited table plus `num_cta` buffers, all recycled between
/// queries). Results land in [`SearchScratch::results`], the trace in
/// [`SearchScratch::trace`].
///
/// # Panics
/// Panics on invalid parameters or a query dimension mismatch.
pub fn search_multi_cta_with<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
    scratch: &mut SearchScratch,
) {
    search_multi_cta_mapped(graph, store, metric, query, k, params, scratch, None)
}

/// [`search_multi_cta_with`] over a *relabeled* graph/store pair.
///
/// With an [`IdMap`], each worker's random start set is drawn in the
/// original numbering (so the traversal visits the same vectors as the
/// unpermuted index, bit for bit) and the merged results are
/// translated back to original ids once at the end — the round loop
/// runs entirely on internal ids with zero per-hop overhead. `None`
/// is the identity.
///
/// # Panics
/// Panics on invalid parameters, a query dimension mismatch, or an
/// id map whose size differs from the graph.
#[allow(clippy::too_many_arguments)]
pub fn search_multi_cta_mapped<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
    scratch: &mut SearchScratch,
    id_map: Option<&IdMap>,
) {
    // ALLOW(panic): documented contract of the panicking entry; the
    // `try_search*` path validates and returns typed errors instead.
    params.validate(k).unwrap_or_else(|e| panic!("{e}"));
    if let Some(m) = id_map {
        // ALLOW(panic): documented precondition (see `# Panics`).
        assert_eq!(m.len(), graph.len(), "id map and graph sizes differ");
    }
    // ALLOW(panic): documented precondition (see `# Panics`).
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    // ALLOW(panic): documented precondition (see `# Panics`).
    assert_eq!(graph.len(), store.len(), "graph and dataset sizes differ");
    let n = graph.len();
    let d = graph.degree();
    let num_cta = params.num_cta;
    let m = per_cta_itopk(params.itopk, num_cta);
    let max_iters = params.effective_max_iterations(d).max(m);

    // Shared standard hash table sized for all workers (Table II: the
    // multi-CTA table lives in device memory and is never reset).
    scratch.begin(VisitedSet::standard_bits(max_iters, num_cta * d), num_cta, m, d);
    let SearchScratch {
        visited,
        buffers,
        active,
        results,
        trace,
        record_trace,
        gang_ids,
        gang_pos,
        gang_dists,
        ..
    } = scratch;
    // ALLOW(panic): `begin` unconditionally installed the set above.
    let hash = visited.as_mut().expect("begin installs the visited set");
    trace.itopk = params.itopk;
    trace.search_width = 1;
    trace.degree = d;
    trace.num_workers = num_cta;
    trace.hash_slots = hash.capacity();
    trace.hash_in_shared = false;

    let oracle = DistanceOracle::new(store, metric);
    let prepared = oracle.prepare(query);

    // Per-worker state; each worker draws its own random start set,
    // scored with one batched gang call per worker.
    let mut rng = StdRng::seed_from_u64(params.seed);
    for buf in buffers.iter_mut() {
        buf.clear_candidates();
        gang_ids.clear();
        for _ in 0..d {
            // Draws happen in the original numbering and map through
            // the id map (a bijection, so the dedup pattern matches
            // the unpermuted index exactly).
            let drawn = rng.gen_range(0..n) as u32;
            let id = match id_map {
                Some(m) => m.internal_of_original(drawn),
                None => drawn,
            };
            if hash.insert(id) {
                gang_ids.push(id);
            }
        }
        gang_dists.clear();
        gang_dists.resize(gang_ids.len(), 0.0);
        oracle.to_rows(&prepared, gang_ids, gang_dists);
        for (&id, &dist) in gang_ids.iter().zip(gang_dists.iter()) {
            buf.push_candidate(BufEntry::new(id, dist));
            trace.init_distances += 1;
        }
        if let Some(log) = trace.accesses.as_mut() {
            log.init_scored.extend_from_slice(gang_ids);
        }
    }

    let mut rounds = 0u64;
    let mut total_computed = trace.init_distances;
    for _round in 0..max_iters {
        let probes_before = hash.probes();
        let mut round_candidates = 0u64;
        let mut round_computed = 0u64;
        let mut any_active = false;
        if let Some(log) = trace.accesses.as_mut() {
            log.iterations.push(IterAccess::default());
        }
        for (buf, act) in buffers.iter_mut().zip(active.iter_mut()) {
            if !*act {
                continue;
            }
            buf.update_topm();
            // p = 1: expand the single best unparented entry. MAX-dist
            // entries are hash-suppressed placeholders whose vector
            // was never loaded; expanding one would make the traversal
            // depend on id order rather than geometry.
            let mut parent = None;
            for entry in buf.topm_mut() {
                if entry.packed != INVALID && !is_parented(entry.packed) && entry.dist < f32::MAX {
                    parent = Some(node_id(entry.packed));
                    entry.packed = set_parented(entry.packed);
                    break;
                }
            }
            let Some(p) = parent else {
                *act = false;
                continue;
            };
            any_active = true;
            if let Some(log) = trace.accesses.as_mut() {
                if let Some(iter) = log.iterations.last_mut() {
                    iter.parents.push(p);
                }
            }
            // All d neighbors enter in adjacency order; the first-visit
            // ones are scored by one batched gang call and patched in.
            buf.clear_candidates();
            gang_ids.clear();
            gang_pos.clear();
            for &nb in graph.neighbors(p as usize) {
                if hash.insert(nb) {
                    gang_ids.push(nb);
                    gang_pos.push(buf.candidates().len() as u32);
                }
                buf.push_candidate(BufEntry { dist: f32::MAX, packed: nb });
            }
            gang_dists.clear();
            gang_dists.resize(gang_ids.len(), 0.0);
            oracle.to_rows(&prepared, gang_ids, gang_dists);
            let cands = buf.candidates_mut();
            for (&pos, &dist) in gang_pos.iter().zip(gang_dists.iter()) {
                // ALLOW(panic): every `pos` was recorded as
                // `candidates().len()` just before a push above.
                cands[pos as usize].dist = dist;
            }
            round_computed += gang_ids.len() as u64;
            round_candidates += buf.candidates().len() as u64;
            if let Some(log) = trace.accesses.as_mut() {
                if let Some(iter) = log.iterations.last_mut() {
                    iter.scored.extend_from_slice(gang_ids);
                }
            }
        }
        if !any_active {
            if let Some(log) = trace.accesses.as_mut() {
                log.iterations.pop(); // empty round: no gathers happened
            }
            break;
        }
        let iter_probes = hash.probes() - probes_before;
        let om = obs::metrics();
        om.search_probe_len.record(iter_probes);
        om.search_sort_len.record(d as u64);
        rounds += 1;
        total_computed += round_computed;
        if *record_trace {
            trace.iterations.push(IterationTrace {
                candidates: round_candidates,
                distances_computed: round_computed,
                hash_probes: iter_probes,
                sort_len: d as u64, // each worker sorts its own d-slot segment
                hash_reset: false,
            });
        }
    }

    {
        let om = obs::metrics();
        om.search_iterations.record(rounds);
        om.search_distances.record(total_computed);
        if hash.capacity() > 0 {
            om.search_hash_occupancy_permille
                .record((hash.len() as u64 * 1000) / hash.capacity() as u64);
        }
    }

    // Merge the workers' lists; the shared hash guarantees a node
    // appears in at most one list.
    for buf in buffers.iter_mut() {
        buf.update_topm(); // fold in any trailing candidates
        results.extend(buf.topm().iter().filter(|e| e.packed != INVALID && e.dist < f32::MAX).map(
            |e| {
                let id = node_id(e.packed);
                let id = match id_map {
                    Some(m) => m.original_of_internal(id),
                    None => id,
                };
                Neighbor::new(id, e.dist)
            },
        ));
    }
    results.sort_unstable_by(cmp_neighbor);
    results.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, GraphConfig};
    use crate::params::SearchParams;
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::exact_search;

    fn setup(n: usize) -> (dataset::Dataset, FixedDegreeGraph) {
        let spec = SynthSpec { dim: 8, n, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let (g, _) = build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
        (base, g)
    }

    fn recall_of(
        base: &dataset::Dataset,
        g: &FixedDegreeGraph,
        params: &SearchParams,
        queries_seed: u64,
    ) -> f64 {
        let spec =
            SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: queries_seed };
        let (_, queries) = spec.generate();
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let (got, _) = search_multi_cta(g, base, Metric::SquaredL2, q, 10, params);
            let want = exact_search(base, Metric::SquaredL2, q, 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        hits as f64 / (queries.len() * 10) as f64
    }

    #[test]
    fn finds_high_recall_results() {
        let (base, g) = setup(2000);
        let recall = recall_of(&base, &g, &SearchParams::for_k(10), 5);
        assert!(recall > 0.9, "multi-CTA recall@10 = {recall}");
    }

    #[test]
    fn workers_partition_visited_nodes() {
        let (base, g) = setup(800);
        let (got, trace) = search_multi_cta(
            &g,
            &base,
            Metric::SquaredL2,
            base.row(0),
            10,
            &SearchParams::for_k(10),
        );
        assert_eq!(trace.num_workers, SearchParams::for_k(10).num_cta);
        // No duplicate result ids — the shared hash partitions work.
        let mut ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), got.len());
        assert_eq!(got[0].id, 0);
    }

    #[test]
    fn more_ctas_explore_more_nodes_per_round() {
        let (base, g) = setup(3000);
        let mut p = SearchParams::for_k(10);
        p.max_iterations = 8;
        p.num_cta = 1;
        let (_, t1) = search_multi_cta(&g, &base, Metric::SquaredL2, base.row(5), 10, &p);
        p.num_cta = 8;
        let (_, t8) = search_multi_cta(&g, &base, Metric::SquaredL2, base.row(5), 10, &p);
        let per_round_1 = t1.iterations.first().map(|i| i.candidates).unwrap_or(0);
        let per_round_8 = t8.iterations.first().map(|i| i.candidates).unwrap_or(0);
        assert!(per_round_8 > per_round_1, "{per_round_8} vs {per_round_1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (base, g) = setup(500);
        let p = SearchParams::for_k(5);
        let (a, _) = search_multi_cta(&g, &base, Metric::SquaredL2, base.row(3), 5, &p);
        let (b, _) = search_multi_cta(&g, &base, Metric::SquaredL2, base.row(3), 5, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn per_cta_itopk_floor() {
        assert_eq!(per_cta_itopk(64, 4), 32);
        assert_eq!(per_cta_itopk(512, 4), 128);
        assert_eq!(per_cta_itopk(64, 64), 32);
    }
}
