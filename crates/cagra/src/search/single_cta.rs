//! Single-CTA search: one worker per query (Sec. IV-C1).
//!
//! The GPU maps each query to one thread block and keeps the visited
//! hash in shared memory (forgettable management); batches of queries
//! run as concurrent blocks. Functionally the search is the iterative
//! loop of Fig. 6, implemented here once and reused by the multi-CTA
//! mapping.

use super::buffer::BufEntry;
use super::hash::VisitedSet;
use super::parent::{is_parented, node_id, set_parented};
use super::scratch::SearchScratch;
use super::trace::{IterAccess, IterationTrace, SearchTrace};
use crate::params::{HashPolicy, SearchParams};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use graph::relabel::IdMap;
use graph::FixedDegreeGraph;
use knn::topk::Neighbor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search the graph for the `k` nearest neighbors of `query`.
///
/// Returns the results in ascending distance order together with the
/// operation trace `gpu-sim` consumes. One-shot convenience wrapper
/// over [`search_single_cta_with`]; batch callers should hold a
/// [`SearchScratch`] per worker thread and call the `_with` variant
/// directly to avoid per-query allocations.
///
/// # Panics
/// Panics on invalid parameters (see [`SearchParams::validate`]) or a
/// query dimension mismatch.
pub fn search_single_cta<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchTrace) {
    let mut scratch = SearchScratch::new();
    search_single_cta_with(graph, store, metric, query, k, params, &mut scratch);
    scratch.into_output()
}

/// [`search_single_cta`] running entirely on caller-provided scratch.
///
/// Results land in [`SearchScratch::results`] (ascending distance) and
/// the trace in [`SearchScratch::trace`]. Reusing one scratch across
/// queries of identical shape performs zero heap allocations per query
/// in steady state — the CPU analogue of the GPU kernel's fixed
/// shared-memory working set.
///
/// # Panics
/// Panics on invalid parameters or a query dimension mismatch.
pub fn search_single_cta_with<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
    scratch: &mut SearchScratch,
) {
    search_single_cta_mapped(graph, store, metric, query, k, params, scratch, None)
}

/// [`search_single_cta_with`] over a *relabeled* graph/store pair.
///
/// With an [`IdMap`], the random initialization draws ids in the
/// original numbering (so the traversal visits the same vectors as the
/// unpermuted index, bit for bit) and results are translated back to
/// original ids once at the end — the hot loop runs entirely on
/// internal ids with zero per-hop overhead. `None` is the identity.
///
/// # Panics
/// Panics on invalid parameters, a query dimension mismatch, or an
/// id map whose size differs from the graph.
#[allow(clippy::too_many_arguments)]
pub fn search_single_cta_mapped<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
    scratch: &mut SearchScratch,
    id_map: Option<&IdMap>,
) {
    // ALLOW(panic): documented contract of the panicking entry; the
    // `try_search*` path validates and returns typed errors instead.
    params.validate(k).unwrap_or_else(|e| panic!("{e}"));
    if let Some(m) = id_map {
        // ALLOW(panic): documented precondition (see `# Panics`).
        assert_eq!(m.len(), graph.len(), "id map and graph sizes differ");
    }
    // ALLOW(panic): documented precondition (see `# Panics`).
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    // ALLOW(panic): documented precondition (see `# Panics`).
    assert_eq!(graph.len(), store.len(), "graph and dataset sizes differ");
    let n = graph.len();
    let d = graph.degree();
    let width = params.search_width * d;
    let max_iters = params.effective_max_iterations(d);

    let (bits, reset_interval, hash_in_shared) = match params.hash {
        HashPolicy::Standard => (VisitedSet::standard_bits(max_iters, width), 0usize, false),
        HashPolicy::Forgettable { bits, reset_interval } => (bits, reset_interval as usize, true),
    };

    scratch.begin(bits, 1, params.itopk, width);
    let SearchScratch {
        visited,
        buffers,
        parents,
        results,
        trace,
        record_trace,
        gang_ids,
        gang_pos,
        gang_dists,
        ..
    } = scratch;
    // ALLOW(panic): `begin` unconditionally installed the set above.
    let hash = visited.as_mut().expect("begin installs the visited set");
    // ALLOW(panic): `begin(.., 1, ..)` sized `buffers` to exactly one.
    let buffer = &mut buffers[0];
    trace.itopk = params.itopk;
    trace.search_width = params.search_width;
    trace.degree = d;
    trace.num_workers = 1;
    trace.hash_slots = hash.capacity();
    trace.hash_in_shared = hash_in_shared;

    let oracle = DistanceOracle::new(store, metric);
    let prepared = oracle.prepare(query);

    // Initialization: p*d uniformly random nodes (Fig. 6, step 0),
    // deduplicated through the hash and scored in one gang call. Draws
    // happen in the *original* numbering and map through the id map
    // (a bijection, so the dedup pattern — and therefore the whole
    // traversal — is identical to the unpermuted index).
    let mut rng = StdRng::seed_from_u64(params.seed);
    buffer.clear_candidates();
    gang_ids.clear();
    for _ in 0..width {
        let drawn = rng.gen_range(0..n) as u32;
        let id = match id_map {
            Some(m) => m.internal_of_original(drawn),
            None => drawn,
        };
        if hash.insert(id) {
            gang_ids.push(id);
        }
    }
    gang_dists.clear();
    gang_dists.resize(gang_ids.len(), 0.0);
    oracle.to_rows(&prepared, gang_ids, gang_dists);
    for (&id, &dist) in gang_ids.iter().zip(gang_dists.iter()) {
        buffer.push_candidate(BufEntry::new(id, dist));
        trace.init_distances += 1;
    }
    if let Some(log) = trace.accesses.as_mut() {
        log.init_scored.extend_from_slice(gang_ids);
    }

    let mut it = 0usize;
    let mut total_computed = trace.init_distances;
    loop {
        // Step 1: top-M update.
        buffer.update_topm();

        // Step 2: pick up to p nodes that have not been parents.
        parents.clear();
        for entry in buffer.topm_mut() {
            if parents.len() == params.search_width {
                break;
            }
            // MAX-dist entries are hash-suppressed placeholders whose
            // vector was never loaded; expanding one would make the
            // traversal depend on id order rather than geometry.
            if entry.packed != super::parent::INVALID
                && !is_parented(entry.packed)
                && entry.dist < f32::MAX
            {
                parents.push(node_id(entry.packed));
                entry.packed = set_parented(entry.packed);
            }
        }
        if parents.is_empty() || it >= max_iters {
            break;
        }
        if let Some(log) = trace.accesses.as_mut() {
            // ALLOW(alloc): runs only with access-trace recording on
            // (analysis mode); the log stores an owned parent list.
            log.iterations.push(IterAccess { parents: parents.clone(), scored: Vec::new() });
        }

        // Forgettable management: periodic reset keeping only the
        // current top-M (Sec. IV-B3). Only *live* entries (computed
        // distance) are re-registered: hash-suppressed MAX-distance
        // placeholders survive the top-M boundary id-dependently, and
        // re-seeding them would make forgettable runs diverge under a
        // locality relabel. Skipping them keeps the reset positional —
        // the re-seeded set is exactly the id-mapped image of the
        // unpermuted one, so relabel parity holds bit-for-bit (a
        // forgotten placeholder is merely recomputed if re-encountered).
        let mut did_reset = false;
        if reset_interval > 0 && it > 0 && it.is_multiple_of(reset_interval) {
            hash.reset(buffer.topm_live_ids());
            did_reset = true;
        }

        // Steps 2+3: expand parents, computing distances only for
        // first-time nodes. Every neighbor enters the candidate
        // segment in adjacency order (hash-suppressed ones stay at
        // dist = MAX); the first-visit rows of each parent are then
        // scored by one batched to_rows gang call and patched in.
        let probes_before = hash.probes();
        let mut computed = 0u64;
        buffer.clear_candidates();
        for &p in parents.iter() {
            gang_ids.clear();
            gang_pos.clear();
            for &nb in graph.neighbors(p as usize) {
                if hash.insert(nb) {
                    gang_ids.push(nb);
                    gang_pos.push(buffer.candidates().len() as u32);
                }
                buffer.push_candidate(BufEntry { dist: f32::MAX, packed: nb });
            }
            gang_dists.clear();
            gang_dists.resize(gang_ids.len(), 0.0);
            oracle.to_rows(&prepared, gang_ids, gang_dists);
            let cands = buffer.candidates_mut();
            for (&pos, &dist) in gang_pos.iter().zip(gang_dists.iter()) {
                // ALLOW(panic): every `pos` was recorded as
                // `candidates().len()` just before a push above.
                cands[pos as usize].dist = dist;
            }
            computed += gang_ids.len() as u64;
            if let Some(log) = trace.accesses.as_mut() {
                if let Some(iter) = log.iterations.last_mut() {
                    iter.scored.extend_from_slice(gang_ids);
                }
            }
        }
        let iter_probes = hash.probes() - probes_before;
        let m = obs::metrics();
        m.search_probe_len.record(iter_probes);
        m.search_sort_len.record(buffer.candidates().len() as u64);
        total_computed += computed;
        if *record_trace {
            trace.iterations.push(IterationTrace {
                candidates: buffer.candidates().len() as u64,
                distances_computed: computed,
                hash_probes: iter_probes,
                sort_len: buffer.candidates().len() as u64,
                hash_reset: did_reset,
            });
        }
        it += 1;
        // The loop head merges these candidates and re-checks the
        // termination conditions (no unparented entries / I_max).
    }

    let m = obs::metrics();
    m.search_iterations.record(it as u64);
    m.search_distances.record(total_computed);
    if hash.capacity() > 0 {
        m.search_hash_occupancy_permille
            .record((hash.len() as u64 * 1000) / hash.capacity() as u64);
    }

    results.extend(
        buffer
            .topm()
            .iter()
            .filter(|e| e.packed != super::parent::INVALID && e.dist < f32::MAX)
            .take(k)
            .map(|e| {
                let id = node_id(e.packed);
                let id = match id_map {
                    Some(m) => m.original_of_internal(id),
                    None => id,
                };
                Neighbor::new(id, e.dist)
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, GraphConfig};
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::exact_search;

    fn setup(n: usize) -> (dataset::Dataset, FixedDegreeGraph) {
        let spec = SynthSpec { dim: 8, n, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let (g, _) = build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
        (base, g)
    }

    #[test]
    fn finds_high_recall_results() {
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 3 };
        let (_, queries) = spec.generate();
        let params = SearchParams::for_k(10);
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let (got, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &params);
            let want = exact_search(&base, Metric::SquaredL2, q, 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_and_unique() {
        let (base, g) = setup(500);
        let q = base.row(0).to_vec();
        let (got, _) =
            search_single_cta(&g, &base, Metric::SquaredL2, &q, 10, &SearchParams::for_k(10));
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), got.len());
        // Query is a dataset point: its own id must be the best hit.
        assert_eq!(got[0].id, 0);
        assert_eq!(got[0].dist, 0.0);
    }

    #[test]
    fn trace_accounts_for_work() {
        let (base, g) = setup(500);
        let (_, trace) = search_single_cta(
            &g,
            &base,
            Metric::SquaredL2,
            base.row(1),
            5,
            &SearchParams::for_k(5),
        );
        assert!(trace.iteration_count() > 0);
        assert!(trace.total_distances() > 0);
        assert!(trace.init_distances <= g.degree() as u64);
        for it in &trace.iterations {
            assert!(it.distances_computed <= it.candidates);
            assert_eq!(it.sort_len, it.candidates);
        }
    }

    #[test]
    fn forgettable_hash_recall_not_catastrophic() {
        // Paper: periodic reset may recompute distances but must not
        // collapse recall.
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 7 };
        let (_, queries) = spec.generate();
        let mut p = SearchParams::for_k(10);
        p.hash = HashPolicy::Forgettable { bits: 8, reset_interval: 1 };
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let (got, trace) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &p);
            assert!(trace.iterations.iter().any(|i| i.hash_reset));
            let want = exact_search(&base, Metric::SquaredL2, q, 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.8, "forgettable recall@10 = {recall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (base, g) = setup(500);
        let q = base.row(3);
        let params = SearchParams::for_k(5);
        let (a, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 5, &params);
        let (b, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 5, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_max_iterations() {
        let (base, g) = setup(500);
        let mut p = SearchParams::for_k(5);
        p.max_iterations = 3;
        let (_, trace) = search_single_cta(&g, &base, Metric::SquaredL2, base.row(2), 5, &p);
        assert!(trace.iteration_count() <= 3);
    }

    #[test]
    fn wider_search_width_expands_more_per_iteration() {
        // The paper's p: each iteration expands p parents and fills a
        // p*d candidate list.
        let (base, g) = setup(1500);
        let d = g.degree();
        for p in [1usize, 2, 4] {
            let mut params = SearchParams::for_k(5);
            params.search_width = p;
            params.max_iterations = 6;
            let (_, trace) =
                search_single_cta(&g, &base, Metric::SquaredL2, base.row(7), 5, &params);
            for (i, it) in trace.iterations.iter().enumerate() {
                assert!(it.candidates <= (p * d) as u64, "iter {i}: {} > {}", it.candidates, p * d);
            }
            // The first iteration always has p full parents available.
            assert_eq!(trace.iterations[0].candidates, (p * d) as u64, "p = {p}");
        }
    }

    #[test]
    fn search_width_two_reaches_at_least_width_one_recall() {
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 31 };
        let (_, queries) = spec.generate();
        let recall_for = |width: usize| {
            let mut params = SearchParams::for_k(10);
            params.search_width = width;
            params.max_iterations = 24; // fixed iteration budget
            let mut hits = 0usize;
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                let (got, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &params);
                let want = exact_search(&base, Metric::SquaredL2, q, 10);
                let ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
                hits += got.iter().filter(|n| ids.contains(&n.id)).count();
            }
            hits as f64 / (queries.len() * 10) as f64
        };
        let r1 = recall_for(1);
        let r2 = recall_for(2);
        // At a fixed iteration budget, wider search explores more
        // nodes, so recall must not drop (Sec. IV-A).
        assert!(r2 >= r1 - 0.02, "p=2 recall {r2} vs p=1 {r1}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_query_dim() {
        let (base, g) = setup(200);
        search_single_cta(&g, &base, Metric::SquaredL2, &[0.0; 3], 5, &SearchParams::for_k(5));
    }
}
