//! Single-CTA search: one worker per query (Sec. IV-C1).
//!
//! The GPU maps each query to one thread block and keeps the visited
//! hash in shared memory (forgettable management); batches of queries
//! run as concurrent blocks. Functionally the search is the iterative
//! loop of Fig. 6, implemented here once and reused by the multi-CTA
//! mapping.

use super::buffer::{BufEntry, SearchBuffer};
use super::hash::VisitedSet;
use super::parent::{is_parented, node_id, set_parented};
use super::trace::{IterationTrace, SearchTrace};
use crate::params::{HashPolicy, SearchParams};
use dataset::VectorStore;
use distance::{DistanceOracle, Metric};
use graph::FixedDegreeGraph;
use knn::topk::Neighbor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Search the graph for the `k` nearest neighbors of `query`.
///
/// Returns the results in ascending distance order together with the
/// operation trace `gpu-sim` consumes.
///
/// # Panics
/// Panics on invalid parameters (see [`SearchParams::validate`]) or a
/// query dimension mismatch.
pub fn search_single_cta<S: VectorStore + ?Sized>(
    graph: &FixedDegreeGraph,
    store: &S,
    metric: Metric,
    query: &[f32],
    k: usize,
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchTrace) {
    params.validate(k).expect("invalid search parameters");
    assert_eq!(query.len(), store.dim(), "query dimension mismatch");
    assert_eq!(graph.len(), store.len(), "graph and dataset sizes differ");
    let n = graph.len();
    let d = graph.degree();
    let width = params.search_width * d;
    let max_iters = params.effective_max_iterations(d);

    let (mut hash, reset_interval, hash_in_shared) = match params.hash {
        HashPolicy::Standard => {
            (VisitedSet::new(VisitedSet::standard_bits(max_iters, width)), 0usize, false)
        }
        HashPolicy::Forgettable { bits, reset_interval } => {
            (VisitedSet::new(bits), reset_interval as usize, true)
        }
    };

    let oracle = DistanceOracle::new(store, metric);
    let mut buffer = SearchBuffer::new(params.itopk, width);
    let mut trace = SearchTrace {
        itopk: params.itopk,
        search_width: params.search_width,
        degree: d,
        num_workers: 1,
        hash_slots: hash.capacity(),
        hash_in_shared,
        ..Default::default()
    };

    // Initialization: p*d uniformly random nodes (Fig. 6, step 0).
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut init = Vec::with_capacity(width);
    for _ in 0..width {
        let id = rng.gen_range(0..n) as u32;
        if hash.insert(id) {
            init.push(BufEntry::new(id, oracle.to_row(query, id as usize)));
            trace.init_distances += 1;
        }
    }
    buffer.set_candidates(init);

    let mut parents: Vec<u32> = Vec::with_capacity(params.search_width);
    let mut it = 0usize;
    loop {
        // Step 1: top-M update.
        buffer.update_topm();

        // Step 2: pick up to p nodes that have not been parents.
        parents.clear();
        for entry in buffer.topm_mut() {
            if parents.len() == params.search_width {
                break;
            }
            if entry.packed != super::parent::INVALID && !is_parented(entry.packed) {
                parents.push(node_id(entry.packed));
                entry.packed = set_parented(entry.packed);
            }
        }
        if parents.is_empty() || it >= max_iters {
            break;
        }

        // Forgettable management: periodic reset keeping only the
        // current top-M (Sec. IV-B3).
        let mut did_reset = false;
        if reset_interval > 0 && it > 0 && it.is_multiple_of(reset_interval) {
            let survivors: Vec<u32> = buffer.topm_ids().collect();
            hash.reset(survivors);
            did_reset = true;
        }

        // Steps 2+3: expand parents, computing distances only for
        // first-time nodes.
        let probes_before = hash.probes();
        let mut candidates = Vec::with_capacity(width);
        let mut computed = 0usize;
        for &p in &parents {
            for &nb in graph.neighbors(p as usize) {
                if hash.insert(nb) {
                    candidates.push(BufEntry::new(nb, oracle.to_row(query, nb as usize)));
                    computed += 1;
                } else {
                    candidates.push(BufEntry { dist: f32::MAX, packed: nb });
                }
            }
        }
        trace.iterations.push(IterationTrace {
            candidates: candidates.len(),
            distances_computed: computed,
            hash_probes: hash.probes() - probes_before,
            sort_len: candidates.len(),
            hash_reset: did_reset,
        });
        buffer.set_candidates(candidates);
        it += 1;
        // The loop head merges these candidates and re-checks the
        // termination conditions (no unparented entries / I_max).
    }

    let results = buffer
        .topm()
        .iter()
        .filter(|e| e.packed != super::parent::INVALID && e.dist < f32::MAX)
        .take(k)
        .map(|e| Neighbor::new(node_id(e.packed), e.dist))
        .collect();
    (results, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_graph, GraphConfig};
    use dataset::synth::{Family, SynthSpec};
    use knn::brute::exact_search;

    fn setup(n: usize) -> (dataset::Dataset, FixedDegreeGraph) {
        let spec = SynthSpec { dim: 8, n, queries: 0, family: Family::Gaussian, seed: 3 };
        let (base, _) = spec.generate();
        let (g, _) = build_graph(&base, Metric::SquaredL2, &GraphConfig::new(16));
        (base, g)
    }

    #[test]
    fn finds_high_recall_results() {
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 3 };
        let (_, queries) = spec.generate();
        let params = SearchParams::for_k(10);
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let (got, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &params);
            let want = exact_search(&base, Metric::SquaredL2, q, 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_and_unique() {
        let (base, g) = setup(500);
        let q = base.row(0).to_vec();
        let (got, _) =
            search_single_cta(&g, &base, Metric::SquaredL2, &q, 10, &SearchParams::for_k(10));
        assert!(got.windows(2).all(|w| w[0].dist <= w[1].dist));
        let mut ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), got.len());
        // Query is a dataset point: its own id must be the best hit.
        assert_eq!(got[0].id, 0);
        assert_eq!(got[0].dist, 0.0);
    }

    #[test]
    fn trace_accounts_for_work() {
        let (base, g) = setup(500);
        let (_, trace) = search_single_cta(
            &g,
            &base,
            Metric::SquaredL2,
            base.row(1),
            5,
            &SearchParams::for_k(5),
        );
        assert!(trace.iteration_count() > 0);
        assert!(trace.total_distances() > 0);
        assert!(trace.init_distances <= g.degree());
        for it in &trace.iterations {
            assert!(it.distances_computed <= it.candidates);
            assert_eq!(it.sort_len, it.candidates);
        }
    }

    #[test]
    fn forgettable_hash_recall_not_catastrophic() {
        // Paper: periodic reset may recompute distances but must not
        // collapse recall.
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 7 };
        let (_, queries) = spec.generate();
        let mut p = SearchParams::for_k(10);
        p.hash = HashPolicy::Forgettable { bits: 8, reset_interval: 1 };
        let mut hits = 0usize;
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            let (got, trace) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &p);
            assert!(trace.iterations.iter().any(|i| i.hash_reset));
            let want = exact_search(&base, Metric::SquaredL2, q, 10);
            let want_ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
            hits += got.iter().filter(|n| want_ids.contains(&n.id)).count();
        }
        let recall = hits as f64 / (queries.len() * 10) as f64;
        assert!(recall > 0.8, "forgettable recall@10 = {recall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (base, g) = setup(500);
        let q = base.row(3);
        let params = SearchParams::for_k(5);
        let (a, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 5, &params);
        let (b, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 5, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_max_iterations() {
        let (base, g) = setup(500);
        let mut p = SearchParams::for_k(5);
        p.max_iterations = 3;
        let (_, trace) =
            search_single_cta(&g, &base, Metric::SquaredL2, base.row(2), 5, &p);
        assert!(trace.iteration_count() <= 3);
    }

    #[test]
    fn wider_search_width_expands_more_per_iteration() {
        // The paper's p: each iteration expands p parents and fills a
        // p*d candidate list.
        let (base, g) = setup(1500);
        let d = g.degree();
        for p in [1usize, 2, 4] {
            let mut params = SearchParams::for_k(5);
            params.search_width = p;
            params.max_iterations = 6;
            let (_, trace) =
                search_single_cta(&g, &base, Metric::SquaredL2, base.row(7), 5, &params);
            for (i, it) in trace.iterations.iter().enumerate() {
                assert!(it.candidates <= p * d, "iter {i}: {} > {}", it.candidates, p * d);
            }
            // The first iteration always has p full parents available.
            assert_eq!(trace.iterations[0].candidates, p * d, "p = {p}");
        }
    }

    #[test]
    fn search_width_two_reaches_at_least_width_one_recall() {
        let (base, g) = setup(2000);
        let spec = SynthSpec { dim: 8, n: 0, queries: 20, family: Family::Gaussian, seed: 31 };
        let (_, queries) = spec.generate();
        let recall_for = |width: usize| {
            let mut params = SearchParams::for_k(10);
            params.search_width = width;
            params.max_iterations = 24; // fixed iteration budget
            let mut hits = 0usize;
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                let (got, _) = search_single_cta(&g, &base, Metric::SquaredL2, q, 10, &params);
                let want = exact_search(&base, Metric::SquaredL2, q, 10);
                let ids: std::collections::HashSet<u32> = want.iter().map(|n| n.id).collect();
                hits += got.iter().filter(|n| ids.contains(&n.id)).count();
            }
            hits as f64 / (queries.len() * 10) as f64
        };
        let r1 = recall_for(1);
        let r2 = recall_for(2);
        // At a fixed iteration budget, wider search explores more
        // nodes, so recall must not drop (Sec. IV-A).
        assert!(r2 >= r1 - 0.02, "p=2 recall {r2} vs p=1 {r1}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_query_dim() {
        let (base, g) = setup(200);
        search_single_cta(&g, &base, Metric::SquaredL2, &[0.0; 3], 5, &SearchParams::for_k(5));
    }
}
